package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"crowdpricing/internal/hdr"
	"crowdpricing/internal/server"
)

// scriptedLatency is a pure function of a request — the deterministic
// stand-in for a daemon's response time, so a single-process replay and a
// sliced distributed replay observe the exact same latency samples.
func scriptedLatency(q *Request) time.Duration {
	return time.Duration(50_000 + int64(q.At)%997_000 + int64(q.ProblemID)*13_000)
}

func scriptedRejected(q *Request) bool { return q.Kind == KindTradeoff && q.ProblemID == 0 }
func scriptedHit(q *Request) bool      { return q.ProblemID%2 == 0 }

// replayScripted simulates executing reqs (one worker's slice, or the whole
// schedule) with the scripted latency/rejection/hit functions, producing
// the same accounting the real runner would.
func replayScripted(reqs []Request, warmup time.Duration) *Result {
	res := &Result{
		Overall: &KindStats{Latency: hdr.New()},
		ByKind:  make(map[string]*KindStats, len(Kinds)),
	}
	for _, k := range Kinds {
		res.ByKind[k] = &KindStats{Latency: hdr.New()}
	}
	for i := range reqs {
		q := &reqs[i]
		if q.At < warmup {
			res.Warmed++
			continue
		}
		ks := res.ByKind[q.Kind]
		res.Overall.Requests++
		ks.Requests++
		if scriptedRejected(q) {
			res.Overall.Rejected++
			ks.Rejected++
			continue
		}
		if scriptedHit(q) {
			res.Overall.CacheHits++
			ks.CacheHits++
		}
		lat := scriptedLatency(q)
		res.Overall.Latency.Record(lat)
		ks.Latency.Record(lat)
	}
	return res
}

// TestMergedPercentilesMatchSingleProcess is the distributed-mode
// equivalence proof: partition a fixed-seed schedule across 1, 2, and 4
// workers, run each slice over the same deterministic latency function,
// ship every worker's histograms through the wire encoding, and merge. The
// merged histograms must equal the single-process replay bucket-for-bucket
// — identical counts, sums, extremes, and every percentile (well within
// the ≤3.1% hdr quantization error; for identical samples the merge is
// exact).
func TestMergedPercentilesMatchSingleProcess(t *testing.T) {
	sched := sliceTestSchedule(t)
	warmup := sched.Config.Warmup
	single := replayScripted(sched.Requests, warmup)
	singleSnap := single.Overall.Latency.Snapshot()

	for _, n := range []int{1, 2, 4} {
		results := make([]*WorkerResult, 0, n)
		for wi := 0; wi < n; wi++ {
			slice, err := SliceSchedule(sched, wi, n)
			if err != nil {
				t.Fatal(err)
			}
			res := replayScripted(slice.Requests, warmup)
			res.ScheduleHash = slice.Hash
			res.Elapsed = time.Second + time.Duration(wi)*time.Millisecond
			a := &Assignment{RunID: "run-test", WorkerIndex: wi, NumWorkers: n}
			// Through the wire: encode → JSON → decode, as posted results do.
			wr := buildWorkerResult(a, fmt.Sprintf("w%d", wi), res)
			data, err := json.Marshal(wr)
			if err != nil {
				t.Fatal(err)
			}
			var decoded WorkerResult
			if err := json.Unmarshal(data, &decoded); err != nil {
				t.Fatal(err)
			}
			results = append(results, &decoded)
		}
		merged, err := MergeWorkerResults(sched, n, results)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}

		if merged.Overall.Requests != single.Overall.Requests ||
			merged.Overall.Rejected != single.Overall.Rejected ||
			merged.Overall.CacheHits != single.Overall.CacheHits ||
			merged.Warmed != single.Warmed {
			t.Fatalf("n=%d: merged totals %+v differ from single-process %+v", n, merged.Overall, single.Overall)
		}
		if !reflect.DeepEqual(merged.Overall.Latency.Snapshot(), singleSnap) {
			t.Fatalf("n=%d: merged overall histogram differs from single-process bucket-for-bucket", n)
		}
		for _, kind := range Kinds {
			if !reflect.DeepEqual(merged.ByKind[kind].Latency.Snapshot(), single.ByKind[kind].Latency.Snapshot()) {
				t.Fatalf("n=%d: merged %q histogram differs from single-process", n, kind)
			}
		}
		for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1} {
			if a, b := merged.Overall.Latency.Quantile(q), single.Overall.Latency.Quantile(q); a != b {
				t.Fatalf("n=%d: merged p%g = %d, single-process = %d", n, q*100, a, b)
			}
		}
		if merged.Elapsed != time.Second+time.Duration(n-1)*time.Millisecond {
			t.Fatalf("n=%d: merged elapsed %v is not the slowest worker's", n, merged.Elapsed)
		}
	}
}

// distributedHarness runs a coordinator over httptest plus nWorkers real
// RunWorker loops sharing one in-process pricing daemon.
func distributedHarness(t *testing.T, cfg Config, nWorkers int) (*Report, *Result) {
	t.Helper()
	sched, err := GenerateSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(CoordinatorOptions{
		Schedule:   sched,
		NumWorkers: nWorkers,
		TargetURL:  "in-process-shared",
	})
	if err != nil {
		t.Fatal(err)
	}
	cs := httptest.NewServer(coord.Handler())
	defer cs.Close()

	// All workers drive one shared daemon, like a production distributed
	// run drives one URL — so the policy cache behaves as a single target.
	shared, _ := NewInProcessTarget(server.Options{})

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, nWorkers)
	for i := 0; i < nWorkers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = RunWorker(ctx, WorkerOptions{
				CoordinatorURL: cs.URL,
				WorkerID:       fmt.Sprintf("test-worker-%d", i),
				NewTarget: func(a *Assignment, sched *Schedule) (Target, error) {
					return NewTargetFor(sched, shared.Client), nil
				},
			})
		}(i)
	}
	merged, waitErr := coord.Wait(ctx)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if waitErr != nil {
		t.Fatalf("coordinator: %v", waitErr)
	}
	rep, err := coord.Report(time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	return rep, merged
}

// TestDistributedEndToEnd drives the full protocol — register, long-poll
// barrier, slice replay, heartbeats, result post, merge — with two real
// workers against one shared in-process daemon, and checks the merged
// report against an independent single-process run of the same seed: same
// schedule hash, same request accounting, zero errors.
func TestDistributedEndToEnd(t *testing.T) {
	cfg := Config{
		Seed:        11,
		Rate:        250,
		Duration:    400 * time.Millisecond,
		Warmup:      100 * time.Millisecond,
		Cardinality: 3,
		Size:        SizeSmall,
	}
	rep, merged := distributedHarness(t, cfg, 2)

	// Single-process reference over the same seed: a fresh daemon, the
	// standard runner, the whole schedule.
	sched, err := GenerateSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	singleTarget, _ := NewInProcessTarget(server.Options{})
	singleRes, err := Run(context.Background(), sched, RunOptions{Target: NewTargetFor(sched, singleTarget.Client)})
	if err != nil {
		t.Fatal(err)
	}

	if rep.ScheduleSHA256 != sched.Hash {
		t.Fatalf("merged report hash %.12s != single-process schedule hash %.12s", rep.ScheduleSHA256, sched.Hash)
	}
	if rep.SchemaVersion != SchemaVersion {
		t.Fatalf("merged report schema %d, want %d", rep.SchemaVersion, SchemaVersion)
	}
	if rep.Errors != 0 || singleRes.Overall.Errors != 0 {
		t.Fatalf("errors: distributed %d, single %d (samples %v)", rep.Errors, singleRes.Overall.Errors, rep.ErrorSamples)
	}
	if rep.Requests != singleRes.Overall.Requests || merged.Warmed != singleRes.Warmed {
		t.Fatalf("accounting differs: distributed %d measured/%d warmed, single %d/%d",
			rep.Requests, merged.Warmed, singleRes.Overall.Requests, singleRes.Warmed)
	}
	if len(rep.Workers) != 2 {
		t.Fatalf("workers block has %d entries, want 2", len(rep.Workers))
	}
	var wsum int64
	for i, wr := range rep.Workers {
		if wr.Index != i {
			t.Fatalf("workers block out of order: %+v", rep.Workers)
		}
		wsum += wr.Requests
	}
	if wsum != rep.Requests {
		t.Fatalf("worker request counts sum to %d, report totals %d", wsum, rep.Requests)
	}
	if !strings.Contains(rep.Table(), "distributed: 2 workers") {
		t.Error("table output missing the workers block")
	}
}

// TestCoordinatorDeadlineFailsLoudly: a run whose workers never all arrive
// must fail with an explicit partial-coverage error — and /report must
// serve the failure, not a partial merge.
func TestCoordinatorDeadlineFailsLoudly(t *testing.T) {
	sched := sliceTestSchedule(t)
	coord, err := NewCoordinator(CoordinatorOptions{
		Schedule:   sched,
		NumWorkers: 2,
		Deadline:   300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cs := httptest.NewServer(coord.Handler())
	defer cs.Close()

	// One worker registers; the second never shows up. The long-poll ends
	// with a 500 once the run fails, which is the point — ignore it here.
	go tryPostJSON(cs.URL+ControlPath, ControlRequest{WorkerID: "only-one"})

	_, waitErr := coord.Wait(context.Background())
	if waitErr == nil {
		t.Fatal("coordinator reported success with 0/2 results")
	}
	if !strings.Contains(waitErr.Error(), "partial coverage") {
		t.Fatalf("deadline error does not name partial coverage: %v", waitErr)
	}
	resp, err := http.Get(cs.URL + ReportPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("/report after failure returned %d, want 500", resp.StatusCode)
	}
}

// TestCoordinatorHeartbeatTimeout: once slices are running, a worker that
// stops heartbeating past the grace fails the run by name.
func TestCoordinatorHeartbeatTimeout(t *testing.T) {
	sched := sliceTestSchedule(t)
	coord, err := NewCoordinator(CoordinatorOptions{
		Schedule:       sched,
		NumWorkers:     2,
		Deadline:       30 * time.Second,
		HeartbeatGrace: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cs := httptest.NewServer(coord.Handler())
	defer cs.Close()

	// Both workers register (releasing the barrier); neither heartbeats.
	// "alive" posts a result; "silent" vanishes.
	var assignments [2]Assignment
	var wg sync.WaitGroup
	for i, id := range []string{"alive", "silent"} {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			status, body, err := tryPostJSON(cs.URL+ControlPath, ControlRequest{WorkerID: id})
			if err != nil || status != http.StatusOK {
				t.Errorf("register %s: status %d err %v", id, status, err)
				return
			}
			if err := json.Unmarshal(body, &assignments[i]); err != nil {
				t.Errorf("register %s: %v", id, err)
			}
		}(i, id)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	postJSON(t, cs.URL+ResultPath, &WorkerResult{
		RunID:          coord.RunID(),
		WorkerID:       "alive",
		WorkerIndex:    assignments[0].WorkerIndex,
		ScheduleSHA256: sched.Hash,
		Overall:        emptyWireStats(),
		Failure:        "scripted failure so the merge never runs", // also proves failure propagation
	})

	_, waitErr := coord.Wait(context.Background())
	if waitErr == nil {
		t.Fatal("coordinator reported success")
	}
	// Either the scripted failure or the silent worker's heartbeat lapse
	// fails the run first; both must be loud and name the worker.
	msg := waitErr.Error()
	if !strings.Contains(msg, "scripted failure") && !strings.Contains(msg, "presumed dead") {
		t.Fatalf("run failed without naming the cause: %v", waitErr)
	}
}

// TestCoordinatorHeartbeatKeepsRunAlive: heartbeats within the grace hold
// the run open well past the grace window itself.
func TestCoordinatorHeartbeatKeepsRunAlive(t *testing.T) {
	sched := sliceTestSchedule(t)
	coord, err := NewCoordinator(CoordinatorOptions{
		Schedule:       sched,
		NumWorkers:     1,
		Deadline:       30 * time.Second,
		HeartbeatGrace: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cs := httptest.NewServer(coord.Handler())
	defer cs.Close()

	a := decodeJSON[Assignment](t, postJSON(t, cs.URL+ControlPath, ControlRequest{WorkerID: "steady"}))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(100 * time.Millisecond):
				tryPostJSON(cs.URL+HeartbeatPath, HeartbeatRequest{RunID: a.RunID, WorkerID: "steady"})
			}
		}
	}()
	// Hold the run open for 3 grace windows, then complete it.
	time.Sleep(1200 * time.Millisecond)
	if err := coord.Err(); err != nil {
		t.Fatalf("run failed despite steady heartbeats: %v", err)
	}
	close(stop)
	wg.Wait()

	slice, err := SliceSchedule(sched, a.WorkerIndex, a.NumWorkers)
	if err != nil {
		t.Fatal(err)
	}
	res := replayScripted(slice.Requests, sched.Config.Warmup)
	res.ScheduleHash = sched.Hash
	postJSON(t, cs.URL+ResultPath, buildWorkerResult(&a, "steady", res))
	if _, err := coord.Wait(context.Background()); err != nil {
		t.Fatalf("completed run failed: %v", err)
	}
}

// TestCoordinatorRejectsHashMismatch: a result replaying a different
// schedule fails the run with the version-skew message.
func TestCoordinatorRejectsHashMismatch(t *testing.T) {
	sched := sliceTestSchedule(t)
	coord, err := NewCoordinator(CoordinatorOptions{Schedule: sched, NumWorkers: 1, Deadline: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	cs := httptest.NewServer(coord.Handler())
	defer cs.Close()

	a := decodeJSON[Assignment](t, postJSON(t, cs.URL+ControlPath, ControlRequest{WorkerID: "skewed"}))
	status, _, err := tryPostJSON(cs.URL+ResultPath, &WorkerResult{
		RunID:          a.RunID,
		WorkerID:       "skewed",
		WorkerIndex:    a.WorkerIndex,
		ScheduleSHA256: strings.Repeat("f", 64),
		Overall:        emptyWireStats(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusConflict {
		t.Fatalf("mismatched result got %d, want 409", status)
	}
	_, waitErr := coord.Wait(context.Background())
	if waitErr == nil || !strings.Contains(waitErr.Error(), "version skew") {
		t.Fatalf("hash mismatch not failed loudly: %v", waitErr)
	}
}

// TestCoordinatorRejectsExtraWorker: registration beyond NumWorkers is a
// 409, and the run is unaffected.
func TestCoordinatorRejectsExtraWorker(t *testing.T) {
	sched := sliceTestSchedule(t)
	coord, err := NewCoordinator(CoordinatorOptions{Schedule: sched, NumWorkers: 1, Deadline: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	cs := httptest.NewServer(coord.Handler())
	defer cs.Close()

	decodeJSON[Assignment](t, postJSON(t, cs.URL+ControlPath, ControlRequest{WorkerID: "first"}))
	resp, err := http.Post(cs.URL+ControlPath, "application/json", strings.NewReader(`{"worker_id":"interloper"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("extra worker got %d, want 409", resp.StatusCode)
	}
	if coord.Err() != nil {
		t.Fatalf("extra registration poisoned the run: %v", coord.Err())
	}
}

// TestControlIsIdempotent: a worker re-registering with the same id gets
// the same assignment — the retry path after a dropped long-poll.
func TestControlIsIdempotent(t *testing.T) {
	sched := sliceTestSchedule(t)
	coord, err := NewCoordinator(CoordinatorOptions{Schedule: sched, NumWorkers: 1, Deadline: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	cs := httptest.NewServer(coord.Handler())
	defer cs.Close()
	a := decodeJSON[Assignment](t, postJSON(t, cs.URL+ControlPath, ControlRequest{WorkerID: "retrier"}))
	b := decodeJSON[Assignment](t, postJSON(t, cs.URL+ControlPath, ControlRequest{WorkerID: "retrier"}))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("re-registration changed the assignment: %+v vs %+v", a, b)
	}
}

// TestMergeRejectsPartialCoverage: every way a merge could silently drop
// coverage is an explicit error.
func TestMergeRejectsPartialCoverage(t *testing.T) {
	sched := sliceTestSchedule(t)
	mkResult := func(wi, n int) *WorkerResult {
		slice, err := SliceSchedule(sched, wi, n)
		if err != nil {
			t.Fatal(err)
		}
		res := replayScripted(slice.Requests, sched.Config.Warmup)
		res.ScheduleHash = sched.Hash
		return buildWorkerResult(&Assignment{RunID: "r", WorkerIndex: wi, NumWorkers: n}, fmt.Sprintf("w%d", wi), res)
	}

	full := []*WorkerResult{mkResult(0, 2), mkResult(1, 2)}
	if _, err := MergeWorkerResults(sched, 2, full); err != nil {
		t.Fatalf("complete merge failed: %v", err)
	}

	if _, err := MergeWorkerResults(sched, 2, full[:1]); err == nil || !strings.Contains(err.Error(), "partial coverage") {
		t.Errorf("missing result not rejected: %v", err)
	}
	dup := []*WorkerResult{mkResult(0, 2), mkResult(0, 2)}
	if _, err := MergeWorkerResults(sched, 2, dup); err == nil {
		t.Error("duplicate worker index merged")
	}
	failed := []*WorkerResult{mkResult(0, 2), {RunID: "r", WorkerID: "w1", WorkerIndex: 1, ScheduleSHA256: sched.Hash, Failure: "it broke"}}
	if _, err := MergeWorkerResults(sched, 2, failed); err == nil || !strings.Contains(err.Error(), "it broke") {
		t.Errorf("failure result not surfaced: %v", err)
	}
	// A worker silently under-reporting (some events never accounted)
	// must be caught by the coverage total.
	short := []*WorkerResult{mkResult(0, 2), mkResult(1, 2)}
	short[1].Overall.Requests -= 3
	short[1].ByKind = map[string]*WireStats{}
	if _, err := MergeWorkerResults(sched, 2, short); err == nil {
		t.Error("under-reported coverage merged")
	}
}

// TestReportOmitsWorkersBlockWhenSingle: single-process reports are
// identical to before apart from the version bump — no workers key at all.
func TestReportOmitsWorkersBlockWhenSingle(t *testing.T) {
	sched := sliceTestSchedule(t)
	res := replayScripted(sched.Requests, sched.Config.Warmup)
	res.ScheduleHash = sched.Hash
	res.Elapsed = time.Second
	rep := BuildReport(sched.Config, "in-process", res, time.Time{})
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"workers"`) {
		t.Fatal("single-process report contains a workers block")
	}
}

// --- small HTTP helpers ---

func emptyWireStats() *WireStats {
	return &WireStats{Latency: hdr.New().Snapshot()}
}

// tryPostJSON issues a JSON POST without failing the test — safe to call
// from helper goroutines (t.Fatal must stay on the test goroutine).
func tryPostJSON(url string, v any) (int, []byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(string(data)))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, body, err
}

func postJSON(t *testing.T, url string, v any) []byte {
	t.Helper()
	status, body, err := tryPostJSON(url, v)
	if err != nil {
		t.Fatal(err)
	}
	if status >= 400 {
		t.Fatalf("POST %s: %d %s", url, status, body)
	}
	return body
}

func decodeJSON[T any](t *testing.T, data []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("decoding %T from %q: %v", v, data, err)
	}
	return v
}

// instantClock makes every Clock.After fire immediately — retry loops and
// heartbeat loops spin without wall-clock waits.
type instantClock struct{}

func (instantClock) Now() time.Time { return time.Unix(0, 0) }
func (instantClock) After(time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	ch <- time.Unix(0, 0)
	return ch
}

// TestWorkerRegisterGivesUpOnUnreachableCoordinator: transport errors are
// retried up to the limit, then surfaced.
func TestWorkerRegisterGivesUpOnUnreachableCoordinator(t *testing.T) {
	err := RunWorker(context.Background(), WorkerOptions{
		// Port 1 refuses connections without a timeout.
		CoordinatorURL: "http://127.0.0.1:1",
		WorkerID:       "lost",
		Clock:          instantClock{},
	})
	if err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("want unreachable error, got %v", err)
	}
}

// TestWorkerRegisterHonorsCancel: a canceled context stops the retry loop.
func TestWorkerRegisterHonorsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := RunWorker(ctx, WorkerOptions{CoordinatorURL: "http://127.0.0.1:1", WorkerID: "canceled"})
	if err == nil || !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("want cancellation error, got %v", err)
	}
}

// TestWorkerRegisterStopsOnProtocolRejection: a coordinator that answers
// with an HTTP error is not retried — the rejection is final.
func TestWorkerRegisterStopsOnProtocolRejection(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "run is fully subscribed", http.StatusConflict)
	}))
	defer srv.Close()
	err := RunWorker(context.Background(), WorkerOptions{CoordinatorURL: srv.URL, WorkerID: "late"})
	if err == nil || !strings.Contains(err.Error(), "refused registration") {
		t.Fatalf("want refused-registration error, got %v", err)
	}
}

// TestWorkerRejectsMalformedAssignment: garbage and semantically invalid
// assignments are both fatal before any schedule work happens.
func TestWorkerRejectsMalformedAssignment(t *testing.T) {
	for _, tc := range []struct {
		name, body, want string
	}{
		{"garbage", `{{{`, "bad assignment"},
		{"invalid", `{"run_id":"r","worker_index":0,"num_workers":0,"schedule_sha256":"x"}`, "malformed assignment"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				fmt.Fprint(w, tc.body)
			}))
			defer srv.Close()
			err := RunWorker(context.Background(), WorkerOptions{CoordinatorURL: srv.URL, WorkerID: "w"})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want %q error, got %v", tc.want, err)
			}
		})
	}
}

// TestWorkerTargetFailurePropagates: a worker that cannot build its target
// reports the failure, and the coordinator fails the whole run with it.
func TestWorkerTargetFailurePropagates(t *testing.T) {
	sched := sliceTestSchedule(t)
	coord, err := NewCoordinator(CoordinatorOptions{Schedule: sched, NumWorkers: 1, Deadline: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	cs := httptest.NewServer(coord.Handler())
	defer cs.Close()

	wErr := RunWorker(context.Background(), WorkerOptions{
		CoordinatorURL: cs.URL,
		WorkerID:       "broken",
		NewTarget: func(a *Assignment, sched *Schedule) (Target, error) {
			return nil, fmt.Errorf("no such daemon")
		},
	})
	if wErr == nil || !strings.Contains(wErr.Error(), "building target") {
		t.Fatalf("worker error: %v", wErr)
	}
	_, waitErr := coord.Wait(context.Background())
	if waitErr == nil || !strings.Contains(waitErr.Error(), "building target") {
		t.Fatalf("coordinator did not surface the worker failure: %v", waitErr)
	}
}

// TestWorkerDefaultTargetRequiresURL: without a NewTarget hook, an
// assignment with no target URL is a loud failure.
func TestWorkerDefaultTargetRequiresURL(t *testing.T) {
	sched := sliceTestSchedule(t)
	coord, err := NewCoordinator(CoordinatorOptions{Schedule: sched, NumWorkers: 1, Deadline: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	cs := httptest.NewServer(coord.Handler())
	defer cs.Close()
	wErr := RunWorker(context.Background(), WorkerOptions{CoordinatorURL: cs.URL, WorkerID: "urlless"})
	if wErr == nil || !strings.Contains(wErr.Error(), "no target URL") {
		t.Fatalf("want no-target-URL error, got %v", wErr)
	}
}

// TestWorkerOptionValidation: the two required options fail fast.
func TestWorkerOptionValidation(t *testing.T) {
	if err := RunWorker(context.Background(), WorkerOptions{WorkerID: "x"}); err == nil || !strings.Contains(err.Error(), "CoordinatorURL") {
		t.Errorf("missing URL not rejected: %v", err)
	}
	if err := RunWorker(context.Background(), WorkerOptions{CoordinatorURL: "http://x"}); err == nil || !strings.Contains(err.Error(), "WorkerID") {
		t.Errorf("missing id not rejected: %v", err)
	}
}

// TestCoordinatorWaitHonorsCancel: canceling Wait's context fails the run.
func TestCoordinatorWaitHonorsCancel(t *testing.T) {
	sched := sliceTestSchedule(t)
	coord, err := NewCoordinator(CoordinatorOptions{Schedule: sched, NumWorkers: 1, Deadline: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := coord.Wait(ctx); err == nil || !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("want cancellation error, got %v", err)
	}
	if coord.Err() == nil {
		t.Fatal("cancellation did not poison the run")
	}
}

// TestCoordinatorOptionValidation: required options fail fast.
func TestCoordinatorOptionValidation(t *testing.T) {
	if _, err := NewCoordinator(CoordinatorOptions{NumWorkers: 1}); err == nil {
		t.Error("missing schedule not rejected")
	}
	if _, err := NewCoordinator(CoordinatorOptions{Schedule: sliceTestSchedule(t)}); err == nil {
		t.Error("zero workers not rejected")
	}
}

// TestCoordinatorReportBeforeCompletion: asking for the report mid-run is
// an error, not a partial report.
func TestCoordinatorReportBeforeCompletion(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorOptions{Schedule: sliceTestSchedule(t), NumWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Report(time.Time{}); err == nil || !strings.Contains(err.Error(), "in progress") {
		t.Fatalf("want in-progress error, got %v", err)
	}
}

// TestCoordinatorEndpointValidation walks the malformed-request surface of
// every endpoint.
func TestCoordinatorEndpointValidation(t *testing.T) {
	sched := sliceTestSchedule(t)
	coord, err := NewCoordinator(CoordinatorOptions{Schedule: sched, NumWorkers: 2, Deadline: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	cs := httptest.NewServer(coord.Handler())
	defer cs.Close()

	post := func(path, body string) int {
		t.Helper()
		resp, err := http.Post(cs.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	for _, tc := range []struct {
		name, path, body string
		want             int
	}{
		{"control garbage", ControlPath, `{{{`, http.StatusBadRequest},
		{"control no id", ControlPath, `{}`, http.StatusBadRequest},
		{"heartbeat garbage", HeartbeatPath, `{{{`, http.StatusBadRequest},
		{"heartbeat wrong run", HeartbeatPath, `{"run_id":"other","worker_id":"w"}`, http.StatusConflict},
		{"heartbeat unknown worker", HeartbeatPath, fmt.Sprintf(`{"run_id":%q,"worker_id":"ghost"}`, coord.RunID()), http.StatusNotFound},
		{"result garbage", ResultPath, `{{{`, http.StatusBadRequest},
		{"result wrong run", ResultPath, `{"run_id":"other","worker_id":"w"}`, http.StatusConflict},
		{"result unknown worker", ResultPath, fmt.Sprintf(`{"run_id":%q,"worker_id":"ghost"}`, coord.RunID()), http.StatusNotFound},
	} {
		if got := post(tc.path, tc.body); got != tc.want {
			t.Errorf("%s: got %d, want %d", tc.name, got, tc.want)
		}
	}
	if coord.Err() != nil {
		t.Fatalf("malformed requests poisoned the run: %v", coord.Err())
	}
}

// TestResultRepostIsAcknowledged: re-posting after a lost 204 is a no-op
// ack and the run still completes exactly once.
func TestResultRepostIsAcknowledged(t *testing.T) {
	sched := sliceTestSchedule(t)
	coord, err := NewCoordinator(CoordinatorOptions{Schedule: sched, NumWorkers: 1, Deadline: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	cs := httptest.NewServer(coord.Handler())
	defer cs.Close()

	a := decodeJSON[Assignment](t, postJSON(t, cs.URL+ControlPath, ControlRequest{WorkerID: "re"}))
	res := replayScripted(sched.Requests, sched.Config.Warmup)
	res.ScheduleHash = sched.Hash
	wr := buildWorkerResult(&a, "re", res)
	postJSON(t, cs.URL+ResultPath, wr)
	postJSON(t, cs.URL+ResultPath, wr) // the retry
	merged, err := coord.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if merged.Overall.Requests != res.Overall.Requests {
		t.Fatalf("repost double-counted: %d vs %d", merged.Overall.Requests, res.Overall.Requests)
	}
	// And the /report long-poll serves the merged result.
	resp, err := http.Get(cs.URL + ReportPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.ScheduleSHA256 != sched.Hash || len(rep.Workers) != 1 {
		t.Fatalf("served report wrong: hash %.12s, %d workers", rep.ScheduleSHA256, len(rep.Workers))
	}
}

// TestMergeRejectsCorruptStats: counter-sanity violations in a posted
// result abort the merge.
func TestMergeRejectsCorruptStats(t *testing.T) {
	sched := sliceTestSchedule(t)
	base := func() *WorkerResult {
		res := replayScripted(sched.Requests, sched.Config.Warmup)
		res.ScheduleHash = sched.Hash
		return buildWorkerResult(&Assignment{RunID: "r", WorkerIndex: 0, NumWorkers: 1}, "w0", res)
	}
	corrupt := map[string]func(*WorkerResult){
		"negative requests":      func(wr *WorkerResult) { wr.Overall.Requests = -1 },
		"errors exceed requests": func(wr *WorkerResult) { wr.Overall.Errors = wr.Overall.Requests + 1 },
		"nil overall":            func(wr *WorkerResult) { wr.Overall = nil },
		"nil latency":            func(wr *WorkerResult) { wr.Overall.Latency = nil },
		"negative warmup":        func(wr *WorkerResult) { wr.Warmed = -1 },
		"corrupt kind stats":     func(wr *WorkerResult) { wr.ByKind[sortedWireKinds(wr.ByKind)[0]].Requests = -1 },
	}
	for name, mutate := range corrupt {
		wr := base()
		mutate(wr)
		if _, err := MergeWorkerResults(sched, 1, []*WorkerResult{wr}); err == nil {
			t.Errorf("%s: merge accepted corrupt stats", name)
		}
	}
}

// TestWorkerHeartbeatLoopSurvivesErrors: rejected and failed heartbeats
// are logged and the loop keeps going until canceled.
func TestWorkerHeartbeatLoopSurvivesErrors(t *testing.T) {
	for _, tc := range []struct {
		name  string
		serve bool
	}{
		{"rejected", true}, // server answers 404
		{"transport", false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			url := "http://127.0.0.1:1"
			if tc.serve {
				srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					http.Error(w, "unknown worker", http.StatusNotFound)
				}))
				defer srv.Close()
				url = srv.URL
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var logged sync.Once
			w := &worker{opts: WorkerOptions{
				CoordinatorURL:    url,
				WorkerID:          "hb",
				HTTP:              &http.Client{},
				Clock:             instantClock{},
				HeartbeatInterval: time.Millisecond,
				Logf: func(format string, args ...any) {
					logged.Do(cancel) // first logged failure ends the test
				},
			}}
			done := make(chan struct{})
			go func() {
				defer close(done)
				w.heartbeatLoop(ctx, &Assignment{RunID: "r"})
			}()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("heartbeat loop did not log a failure and exit")
			}
		})
	}
}

// workerCount reads the registered-worker count (test-only accessor).
func (c *Coordinator) workerCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// stepClock is a manually advanced clock for driving checkLiveness
// deterministically.
type stepClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *stepClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *stepClock) After(time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	ch <- c.Now()
	return ch
}

func (c *stepClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestCheckLivenessDeterministic drives every liveness branch with a
// stepped clock instead of racing wall-clock ticks: healthy before the
// barrier, healthy within the grace, dead past the grace, and dead past
// the run deadline.
func TestCheckLivenessDeterministic(t *testing.T) {
	sched := sliceTestSchedule(t)
	newCoord := func() (*Coordinator, *stepClock) {
		sc := &stepClock{t: time.Unix(1000, 0)}
		coord, err := NewCoordinator(CoordinatorOptions{
			Schedule:       sched,
			NumWorkers:     2,
			Deadline:       time.Minute,
			HeartbeatGrace: 5 * time.Second,
			Clock:          sc,
		})
		if err != nil {
			t.Fatal(err)
		}
		return coord, sc
	}

	t.Run("pre-barrier silence is fine", func(t *testing.T) {
		coord, sc := newCoord()
		cs := httptest.NewServer(coord.Handler())
		defer cs.Close()
		go tryPostJSON(cs.URL+ControlPath, ControlRequest{WorkerID: "w0"}) // 1 of 2: barrier stays up
		for coord.workerCount() == 0 {
			time.Sleep(time.Millisecond)
		}
		sc.advance(30 * time.Second) // far past the grace, inside the deadline
		if err := coord.checkLiveness(); err != nil {
			t.Fatalf("pre-barrier staleness failed the run: %v", err)
		}
		// Release the held /control long-poll so the deferred server Close
		// (which waits for in-flight requests) can finish.
		coord.fail(fmt.Errorf("test teardown"))
	})

	t.Run("post-barrier silence past grace fails", func(t *testing.T) {
		coord, sc := newCoord()
		cs := httptest.NewServer(coord.Handler())
		defer cs.Close()
		var wg sync.WaitGroup
		for _, id := range []string{"w0", "w1"} {
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				tryPostJSON(cs.URL+ControlPath, ControlRequest{WorkerID: id})
			}(id)
		}
		wg.Wait() // barrier released: both assignments answered
		sc.advance(4 * time.Second)
		if err := coord.checkLiveness(); err != nil {
			t.Fatalf("silence inside the grace failed the run: %v", err)
		}
		sc.advance(2 * time.Second)
		err := coord.checkLiveness()
		if err == nil || !strings.Contains(err.Error(), "presumed dead") {
			t.Fatalf("want presumed-dead failure, got %v", err)
		}
		// Sticky: asking again reports the same failure.
		if again := coord.checkLiveness(); again == nil || again.Error() != err.Error() {
			t.Fatalf("failure not sticky: %v", again)
		}
	})

	t.Run("deadline fails even pre-barrier", func(t *testing.T) {
		coord, sc := newCoord()
		sc.advance(2 * time.Minute)
		err := coord.checkLiveness()
		if err == nil || !strings.Contains(err.Error(), "partial coverage") {
			t.Fatalf("want deadline failure, got %v", err)
		}
	})
}

// TestWorkerPostResultSurfacesRejection: posting to a run that already
// failed surfaces the coordinator's rejection.
func TestWorkerPostResultSurfacesRejection(t *testing.T) {
	sched := sliceTestSchedule(t)
	coord, err := NewCoordinator(CoordinatorOptions{Schedule: sched, NumWorkers: 1, Deadline: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	cs := httptest.NewServer(coord.Handler())
	defer cs.Close()
	a := decodeJSON[Assignment](t, postJSON(t, cs.URL+ControlPath, ControlRequest{WorkerID: "rejectee"}))
	coord.fail(fmt.Errorf("poisoned by test"))
	w := &worker{opts: WorkerOptions{CoordinatorURL: cs.URL, WorkerID: "rejectee", HTTP: &http.Client{}, Logf: func(string, ...any) {}}}
	res := replayScripted(sched.Requests, sched.Config.Warmup)
	res.ScheduleHash = sched.Hash
	err = w.postResult(context.Background(), buildWorkerResult(&a, "rejectee", res))
	if err == nil || !strings.Contains(err.Error(), "rejected result") {
		t.Fatalf("want rejected-result error, got %v", err)
	}
}

// TestNewHTTPTargetShape: the HTTP target constructor normalizes its base
// URL and yields a usable client.
func TestNewHTTPTargetShape(t *testing.T) {
	ct := NewHTTPTarget("http://example.invalid/")
	if ct == nil || ct.Client == nil {
		t.Fatal("NewHTTPTarget returned an unusable target")
	}
}

// TestWriteJSONErrorPath: an unwritable path is an error, not a panic.
func TestWriteJSONErrorPath(t *testing.T) {
	sched := sliceTestSchedule(t)
	res := replayScripted(sched.Requests, sched.Config.Warmup)
	res.ScheduleHash = sched.Hash
	rep := BuildReport(sched.Config, "x", res, time.Time{})
	if err := rep.WriteJSON("/nonexistent-dir-for-test/report.json"); err == nil {
		t.Fatal("writing into a missing directory succeeded")
	}
}
