// Package bench is the load-generation and continuous-benchmark harness for
// the pricing daemon: it replays NHPP-scheduled pricing requests (the
// paper's Section 5 arrival model) against internal/server, measures
// coordinated-omission-safe latency into the shared internal/hdr
// histogram, and emits machine-readable reports that CI diffs run-over-run.
//
// The pipeline is generator → runner → report → compare:
//
//   - GenerateSchedule turns a Config (seed, rate, mix, fingerprint
//     cardinality, problem size) into a deterministic open-loop request
//     schedule: every arrival time, problem kind, and problem body is a pure
//     function of the seed.
//   - Run fires the schedule at an in-process or remote HTTP target,
//     timing each request from its *scheduled* start so queueing delay is
//     charged to latency (no coordinated omission).
//   - BuildReport summarizes the run (percentiles, throughput, error rate,
//     cache hit ratio, per-endpoint breakdown) as JSON + a human table.
//   - Compare diffs two reports metric-by-metric against a regression
//     threshold, the basis for the CI exit code.
package bench

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"crowdpricing/internal/dist"
	"crowdpricing/internal/nhpp"
	"crowdpricing/internal/rate"
	"crowdpricing/internal/server"
)

// Size selects the generated problem scale. Larger sizes stress the solver;
// smaller sizes stress the HTTP/cache path.
type Size string

// Problem scales.
const (
	// SizeSmall solves in well under a millisecond cold — the right scale
	// for cache/transport benchmarks and the CI smoke run.
	SizeSmall Size = "small"
	// SizeMedium is an intermediate scale.
	SizeMedium Size = "medium"
	// SizePaper matches the paper's experiments (N=200, 72 intervals):
	// cold solves take milliseconds, so the cache hit-rate dial dominates
	// throughput.
	SizePaper Size = "paper"
)

// Shape selects the arrival-rate profile of the NHPP schedule.
type Shape string

// Arrival shapes.
const (
	// ShapeConstant is a homogeneous Poisson process at Config.Rate.
	ShapeConstant Shape = "constant"
	// ShapeDiurnal modulates Config.Rate with a ±60% sinusoid over the run
	// window — a compressed version of the day/night cycle the paper
	// estimates from mturk-tracker traffic (GaoP14 §5.2).
	ShapeDiurnal Shape = "diurnal"
)

// Mix weights the three problem kinds in the generated workload. Weights
// are relative; they need not sum to 1. A zero-value Mix defaults to
// DefaultMix.
type Mix struct {
	Deadline float64 `json:"deadline"`
	Budget   float64 `json:"budget"`
	Tradeoff float64 `json:"tradeoff"`
}

// DefaultMix leans on the deadline solver (the expensive one) while keeping
// the static solvers in the mix, mirroring the paper's emphasis.
var DefaultMix = Mix{Deadline: 0.5, Budget: 0.3, Tradeoff: 0.2}

func (m Mix) total() float64 { return m.Deadline + m.Budget + m.Tradeoff }

// Config parameterizes schedule generation. All randomness derives from
// Seed: equal configs generate byte-identical schedules.
type Config struct {
	// Seed drives every random draw (arrival times, kind picks, problem
	// bodies).
	Seed int64 `json:"seed"`
	// Rate is the mean arrival rate in requests per second.
	Rate float64 `json:"rate_rps"`
	// Duration is the measurement window; Warmup precedes it and is
	// excluded from statistics.
	Duration time.Duration `json:"duration_ns"`
	Warmup   time.Duration `json:"warmup_ns"`
	// Mix weights the problem kinds (zero value = DefaultMix).
	Mix Mix `json:"mix"`
	// Cardinality is the number of distinct problems per kind — the cache
	// hit-rate dial. With R total requests of a kind, the expected steady
	// state hit ratio approaches 1 − cardinality/R.
	Cardinality int `json:"cardinality"`
	// Size selects the problem scale (default SizeSmall).
	Size Size `json:"size"`
	// Shape selects the arrival profile (default ShapeConstant).
	Shape Shape `json:"shape"`
}

func (c *Config) normalized() (Config, error) {
	out := *c
	if out.Rate <= 0 {
		return out, fmt.Errorf("bench: rate must be positive, got %v", out.Rate)
	}
	if out.Duration <= 0 {
		return out, fmt.Errorf("bench: duration must be positive, got %v", out.Duration)
	}
	if out.Warmup < 0 {
		return out, fmt.Errorf("bench: negative warmup %v", out.Warmup)
	}
	if out.Mix == (Mix{}) {
		out.Mix = DefaultMix
	}
	if out.Mix.Deadline < 0 || out.Mix.Budget < 0 || out.Mix.Tradeoff < 0 || out.Mix.total() <= 0 {
		return out, fmt.Errorf("bench: mix weights must be non-negative with a positive sum, got %+v", out.Mix)
	}
	if out.Cardinality <= 0 {
		out.Cardinality = 16
	}
	switch out.Size {
	case "":
		out.Size = SizeSmall
	case SizeSmall, SizeMedium, SizePaper:
	default:
		return out, fmt.Errorf("bench: unknown size %q (want %q, %q, or %q)", out.Size, SizeSmall, SizeMedium, SizePaper)
	}
	switch out.Shape {
	case "":
		out.Shape = ShapeConstant
	case ShapeConstant, ShapeDiurnal:
	default:
		return out, fmt.Errorf("bench: unknown shape %q (want %q or %q)", out.Shape, ShapeConstant, ShapeDiurnal)
	}
	return out, nil
}

// Request kinds, matching the server's endpoint names.
const (
	KindDeadline = server.KindDeadline
	KindBudget   = server.KindBudget
	KindTradeoff = server.KindTradeoff
)

// Kinds lists the request kinds in canonical order.
var Kinds = []string{KindDeadline, KindBudget, KindTradeoff}

// Request is one scheduled pricing request. Exactly one of Deadline,
// Budget, Tradeoff is non-nil according to Kind. Requests with the same
// (Kind, ProblemID) share one problem body (and hence one server-side
// fingerprint), which is what makes Cardinality a cache hit-rate dial.
type Request struct {
	// At is the scheduled fire time as an offset from run start (warmup
	// included: requests with At < Config.Warmup warm the cache but are
	// excluded from statistics).
	At time.Duration
	// Kind is KindDeadline, KindBudget, or KindTradeoff.
	Kind string
	// ProblemID identifies the problem body within its kind, in
	// [0, Cardinality).
	ProblemID int

	Deadline *server.DeadlineRequest
	Budget   *server.BudgetRequest
	Tradeoff *server.TradeoffRequest
}

// Schedule is a fully materialized open-loop request schedule.
type Schedule struct {
	// Config is the normalized generating configuration.
	Config Config
	// Requests are sorted by At.
	Requests []Request
	// Hash is the SHA-256 over the normalized Config plus
	// (At, Kind, ProblemID) of every request — two runs are replaying the
	// same workload iff their hashes match. Covering the config matters:
	// e.g. -size changes the problem bodies without moving a single
	// arrival, so the request tuples alone would collide.
	Hash string
}

// GenerateSchedule materializes the NHPP request schedule for cfg.
// Deterministic: equal configs yield equal schedules, including problem
// bodies, across runs and platforms.
func GenerateSchedule(cfg Config) (*Schedule, error) {
	norm, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	window := norm.Warmup + norm.Duration
	windowHours := window.Hours()
	ratePerHour := norm.Rate * 3600

	var fn rate.Fn
	switch norm.Shape {
	case ShapeConstant:
		fn = rate.Constant(ratePerHour)
	case ShapeDiurnal:
		// One full sinusoidal cycle across the run window, bucketed so the
		// NHPP thinning bound stays tight. The factors average 1 over the
		// cycle, preserving the configured mean rate.
		const buckets = 12
		factors := make([]float64, buckets)
		for i := range factors {
			factors[i] = ratePerHour * (1 + 0.6*math.Sin(2*math.Pi*float64(i)/buckets))
		}
		fn = rate.NewPiecewise(windowHours/buckets, factors)
	}

	r := dist.NewRNG(norm.Seed)
	times := nhpp.New(fn).Events(r, 0, windowHours, 0)

	problems := newProblemSet(norm)
	reqs := make([]Request, 0, len(times))
	for _, t := range times {
		req := Request{
			At:   time.Duration(t * float64(time.Hour)),
			Kind: pickKind(r, norm.Mix),
		}
		req.ProblemID = r.Intn(norm.Cardinality)
		problems.bind(&req)
		reqs = append(reqs, req)
	}
	return &Schedule{Config: norm, Requests: reqs, Hash: hashSchedule(norm, reqs)}, nil
}

func pickKind(r *dist.RNG, m Mix) string {
	u := r.Float64() * m.total()
	switch {
	case u < m.Deadline:
		return KindDeadline
	case u < m.Deadline+m.Budget:
		return KindBudget
	default:
		return KindTradeoff
	}
}

func hashSchedule(cfg Config, reqs []Request) string {
	h := sha256.New()
	// The normalized config pins everything the request tuples don't
	// (problem scale, mix weights, rate); json.Marshal of a struct is
	// deterministic (declaration field order).
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		panic("bench: Config not marshalable: " + err.Error())
	}
	h.Write(cfgJSON)
	var buf [13]byte
	for _, q := range reqs {
		binary.LittleEndian.PutUint64(buf[0:8], uint64(q.At))
		buf[8] = kindByte(q.Kind)
		binary.LittleEndian.PutUint32(buf[9:13], uint32(q.ProblemID))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

func kindByte(kind string) byte {
	for i, k := range Kinds {
		if k == kind {
			return byte(i)
		}
	}
	return 0xff
}

// problemScale holds the per-Size structural parameters.
type problemScale struct {
	n         int
	intervals int
	horizon   float64 // hours
	minPrice  int
	maxPrice  int
}

var scales = map[Size]problemScale{
	SizeSmall:  {n: 16, intervals: 8, horizon: 4, minPrice: 1, maxPrice: 25},
	SizeMedium: {n: 50, intervals: 24, horizon: 24, minPrice: 1, maxPrice: 40},
	SizePaper:  {n: 200, intervals: 72, horizon: 72, minPrice: 1, maxPrice: 50},
}

// problemSet lazily materializes the Cardinality distinct problem bodies
// per kind. Bodies depend only on (seed, kind, id) — never on arrival
// order — so the same logical problem is byte-identical across schedules,
// shapes, and mixes, and maps to the same server-side fingerprint.
type problemSet struct {
	cfg      Config
	scale    problemScale
	deadline map[int]*server.DeadlineRequest
	budget   map[int]*server.BudgetRequest
	tradeoff map[int]*server.TradeoffRequest
}

func newProblemSet(cfg Config) *problemSet {
	return &problemSet{
		cfg:      cfg,
		scale:    scales[cfg.Size],
		deadline: make(map[int]*server.DeadlineRequest),
		budget:   make(map[int]*server.BudgetRequest),
		tradeoff: make(map[int]*server.TradeoffRequest),
	}
}

// problemRNG derives the body RNG for (kind, id). The large odd multipliers
// spread (seed, kind, id) triples over distinct seeds; dist.NewRNG then
// mixes the seed through splitmix64, so nearby ids still decorrelate.
func (ps *problemSet) problemRNG(kind string, id int) *dist.RNG {
	return dist.NewRNG(ps.cfg.Seed + int64(kindByte(kind)+1)*1_000_003 + int64(id)*7_919)
}

func (ps *problemSet) bind(req *Request) {
	switch req.Kind {
	case KindDeadline:
		req.Deadline = ps.deadlineProblem(req.ProblemID)
	case KindBudget:
		req.Budget = ps.budgetProblem(req.ProblemID)
	case KindTradeoff:
		req.Tradeoff = ps.tradeoffProblem(req.ProblemID)
	}
}

// accept draws a mildly jittered Equation-3 acceptance curve around the
// paper's fitted parameters (S=15, B=-0.39, M=2000). The logistic is
// strictly positive at every price, so every generated problem is feasible
// for every solver.
func accept(r *dist.RNG) server.LogisticParams {
	return server.LogisticParams{S: r.Uniform(10, 20), B: -0.39, M: 2000}
}

func (ps *problemSet) deadlineProblem(id int) *server.DeadlineRequest {
	if p, ok := ps.deadline[id]; ok {
		return p
	}
	r := ps.problemRNG(KindDeadline, id)
	sc := ps.scale
	lambdas := make([]float64, sc.intervals)
	// Expected arrivals ≈ 2N over the horizon: enough that completing all
	// tasks is plausible, so the DP explores the interesting price region.
	perInterval := 2 * float64(sc.n) / float64(sc.intervals)
	for t := range lambdas {
		lambdas[t] = perInterval * r.Uniform(0.8, 1.6)
	}
	p := &server.DeadlineRequest{
		N:            sc.n,
		HorizonHours: sc.horizon,
		Intervals:    sc.intervals,
		Lambdas:      lambdas,
		Accept:       accept(r),
		MinPrice:     sc.minPrice,
		MaxPrice:     sc.maxPrice,
		Penalty:      4 * float64(sc.maxPrice),
		TruncEps:     1e-6,
	}
	ps.deadline[id] = p
	return p
}

func (ps *problemSet) budgetProblem(id int) *server.BudgetRequest {
	if p, ok := ps.budget[id]; ok {
		return p
	}
	r := ps.problemRNG(KindBudget, id)
	sc := ps.scale
	// Budget in [N·maxPrice, 2N·maxPrice]: always feasible (even pricing
	// every task at maxPrice fits), so the hull solver never rejects.
	p := &server.BudgetRequest{
		N:        sc.n,
		Budget:   sc.n*sc.maxPrice + r.Intn(sc.n*sc.maxPrice+1),
		Accept:   accept(r),
		MinPrice: sc.minPrice,
		MaxPrice: sc.maxPrice,
		Method:   server.BudgetMethodHull,
	}
	ps.budget[id] = p
	return p
}

func (ps *problemSet) tradeoffProblem(id int) *server.TradeoffRequest {
	if p, ok := ps.tradeoff[id]; ok {
		return p
	}
	r := ps.problemRNG(KindTradeoff, id)
	sc := ps.scale
	p := &server.TradeoffRequest{
		N:           sc.n,
		Alpha:       r.Uniform(1, 10),
		Lambda:      r.Uniform(50, 200),
		Accept:      accept(r),
		MinPrice:    sc.minPrice,
		MaxPrice:    sc.maxPrice,
		Formulation: server.TradeoffWorkerArrival,
	}
	ps.tradeoff[id] = p
	return p
}
