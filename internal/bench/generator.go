// Package bench is the load-generation and continuous-benchmark harness for
// the pricing daemon: it replays NHPP-scheduled pricing requests (the
// paper's Section 5 arrival model) against internal/server, measures
// coordinated-omission-safe latency into the shared internal/hdr
// histogram, and emits machine-readable reports that CI diffs run-over-run.
//
// The workload is kind-generic: problem kinds and their body generators
// come from the engine's kind registry (internal/kinds), so a newly
// registered kind is load-testable by naming it in the Mix — no generator
// changes. The pipeline is generator → runner → report → compare:
//
//   - GenerateSchedule turns a Config (seed, rate, mix, fingerprint
//     cardinality, problem size) into a deterministic open-loop request
//     schedule: every arrival time, problem kind, and problem body is a pure
//     function of the seed.
//   - Run fires the schedule at an in-process or remote HTTP target,
//     timing each request from its *scheduled* start so queueing delay is
//     charged to latency (no coordinated omission). Intentional backpressure
//     (HTTP 429 shedding) is accounted separately from errors.
//   - BuildReport summarizes the run (percentiles, throughput, error and
//     rejection rates, cache hit ratio, per-endpoint breakdown) as JSON + a
//     human table.
//   - Compare diffs two reports metric-by-metric against a regression
//     threshold, the basis for the CI exit code.
package bench

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"time"

	"crowdpricing/internal/campaign"
	"crowdpricing/internal/dist"
	"crowdpricing/internal/engine"
	"crowdpricing/internal/kinds"
	"crowdpricing/internal/nhpp"
	"crowdpricing/internal/rate"
)

// Size selects the generated problem scale. Larger sizes stress the solver;
// smaller sizes stress the HTTP/cache path.
type Size string

// Problem scales.
const (
	// SizeSmall solves in well under a millisecond cold — the right scale
	// for cache/transport benchmarks and the CI smoke run.
	SizeSmall Size = "small"
	// SizeMedium is an intermediate scale.
	SizeMedium Size = "medium"
	// SizePaper matches the paper's experiments (N=200, 72 intervals):
	// cold solves take milliseconds, so the cache hit-rate dial dominates
	// throughput.
	SizePaper Size = "paper"
)

// Shape selects the arrival-rate profile of the NHPP schedule.
type Shape string

// Arrival shapes.
const (
	// ShapeConstant is a homogeneous Poisson process at Config.Rate.
	ShapeConstant Shape = "constant"
	// ShapeDiurnal modulates Config.Rate with a ±60% sinusoid over the run
	// window — a compressed version of the day/night cycle the paper
	// estimates from mturk-tracker traffic (GaoP14 §5.2).
	ShapeDiurnal Shape = "diurnal"
)

// Scenario selects the workload shape.
type Scenario string

// Workload scenarios.
const (
	// ScenarioSolve is the stateless open-loop mix: every scheduled
	// request is one POST /v1/solve/{kind}. The default.
	ScenarioSolve Scenario = "solve"
	// ScenarioCampaign is the stateful lifecycle workload: every scheduled
	// arrival starts a campaign session — create, then CampaignSteps
	// observe+quote pairs, then finish — so one schedule entry drives
	// 2·CampaignSteps+2 HTTP operations against the campaign API. Latency
	// is measured per session (scheduled start to finish), per kind of the
	// underlying problem.
	ScenarioCampaign Scenario = "campaign"
)

// DefaultCampaignSteps is the observe/quote pairs per campaign session.
const DefaultCampaignSteps = 8

// Mix weights the problem kinds in the generated workload, keyed by
// registry kind name. Weights are relative; they need not sum to 1. Kinds
// absent from the map weigh 0; an empty or nil Mix defaults to DefaultMix.
// Any kind registered with the engine registry is addressable — adding a
// kind to the service makes it load-testable with no change here.
type Mix map[string]float64

// DefaultMix leans on the deadline solver (the expensive one) while keeping
// the static solvers in the mix, mirroring the paper's emphasis.
var DefaultMix = Mix{
	kinds.KindDeadline: 0.5,
	kinds.KindBudget:   0.3,
	kinds.KindTradeoff: 0.2,
}

// sortedKinds returns the mix's kind names in ascending order, so every
// walk over the mix — and every float accumulation along it — is
// deterministic for a given mix.
func (m Mix) sortedKinds() []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

func (m Mix) total() float64 {
	sum := 0.0
	// Sorted walk: float addition is order-sensitive, and total() feeds the
	// normalized weights that drive seeded kind selection.
	for _, k := range m.sortedKinds() {
		sum += m[k]
	}
	return sum
}

func (m Mix) clone() Mix {
	out := make(Mix, len(m))
	for k, w := range m {
		out[k] = w
	}
	return out
}

// Config parameterizes schedule generation. All randomness derives from
// Seed: equal configs generate byte-identical schedules.
type Config struct {
	// Seed drives every random draw (arrival times, kind picks, problem
	// bodies).
	Seed int64 `json:"seed"`
	// Rate is the mean arrival rate in requests per second.
	Rate float64 `json:"rate_rps"`
	// Duration is the measurement window; Warmup precedes it and is
	// excluded from statistics.
	Duration time.Duration `json:"duration_ns"`
	Warmup   time.Duration `json:"warmup_ns"`
	// Mix weights the problem kinds by registry name (empty = DefaultMix).
	Mix Mix `json:"mix"`
	// Cardinality is the number of distinct problems per kind — the cache
	// hit-rate dial. With R total requests of a kind, the expected steady
	// state hit ratio approaches 1 − cardinality/R.
	Cardinality int `json:"cardinality"`
	// Size selects the problem scale (default SizeSmall).
	Size Size `json:"size"`
	// Shape selects the arrival profile (default ShapeConstant).
	Shape Shape `json:"shape"`
	// Scenario selects stateless solves or stateful campaign sessions
	// (default ScenarioSolve).
	Scenario Scenario `json:"scenario"`
	// CampaignSteps is the observe/quote pairs per campaign session
	// (campaign scenario only; 0 = DefaultCampaignSteps).
	CampaignSteps int `json:"campaign_steps,omitempty"`
	// CampaignAdaptive runs every campaign session in §5.2.5 adaptive mode
	// (deadline kinds only — the generator rejects mixes it cannot serve).
	CampaignAdaptive bool `json:"campaign_adaptive,omitempty"`
	// CampaignDedup is the fraction of campaign sessions redirected onto one
	// shared problem body per kind (campaign scenario only; 0 = every session
	// draws from the full Cardinality). High values model many tenants
	// pricing the same batch — the regime the server's quoter intern table
	// collapses to one decoded policy table.
	CampaignDedup float64 `json:"campaign_dedup,omitempty"`
}

func (c *Config) normalized() (Config, error) {
	out := *c
	if out.Rate <= 0 {
		return out, fmt.Errorf("bench: rate must be positive, got %v", out.Rate)
	}
	if out.Duration <= 0 {
		return out, fmt.Errorf("bench: duration must be positive, got %v", out.Duration)
	}
	if out.Warmup < 0 {
		return out, fmt.Errorf("bench: negative warmup %v", out.Warmup)
	}
	switch out.Scenario {
	case "":
		out.Scenario = ScenarioSolve
	case ScenarioSolve, ScenarioCampaign:
	default:
		return out, fmt.Errorf("bench: unknown scenario %q (want %q or %q)", out.Scenario, ScenarioSolve, ScenarioCampaign)
	}
	if out.Scenario == ScenarioCampaign {
		if out.CampaignSteps <= 0 {
			out.CampaignSteps = DefaultCampaignSteps
		}
	} else if out.CampaignSteps != 0 || out.CampaignAdaptive || out.CampaignDedup != 0 {
		return out, fmt.Errorf("bench: campaign knobs set on the %q scenario", out.Scenario)
	}
	if out.CampaignDedup < 0 || out.CampaignDedup > 1 {
		return out, fmt.Errorf("bench: campaign dedup fraction %v outside [0, 1]", out.CampaignDedup)
	}
	if len(out.Mix) == 0 {
		if out.Scenario == ScenarioCampaign {
			// The default solve mix includes budget, which has no campaign
			// runtime; campaigns default to the paper's headline deadline
			// workload.
			out.Mix = Mix{kinds.KindDeadline: 1}
		} else {
			out.Mix = DefaultMix.clone()
		}
	}
	// Sorted walk so a mix with several problems reports the same first
	// error on every run.
	for _, kind := range out.Mix.sortedKinds() {
		w := out.Mix[kind]
		def, ok := registry().Lookup(kind)
		if !ok {
			return out, fmt.Errorf("bench: mix names unknown kind %q (registered: %v)", kind, Kinds)
		}
		if def.Sample == nil {
			return out, fmt.Errorf("bench: kind %q has no workload sampler", kind)
		}
		if w < 0 {
			return out, fmt.Errorf("bench: negative mix weight %v for %q", w, kind)
		}
		if out.Scenario == ScenarioCampaign && w > 0 {
			if !campaign.SupportsKind(kind) {
				return out, fmt.Errorf("bench: kind %q has no campaign runtime (static allocation, no price table)", kind)
			}
			if out.CampaignAdaptive && kind != kinds.KindDeadline {
				return out, fmt.Errorf("bench: adaptive campaigns require the deadline kind, mix names %q", kind)
			}
		}
	}
	if out.Mix.total() <= 0 {
		return out, fmt.Errorf("bench: mix weights must have a positive sum, got %+v", out.Mix)
	}
	if out.Cardinality <= 0 {
		out.Cardinality = 16
	}
	switch out.Size {
	case "":
		out.Size = SizeSmall
	case SizeSmall, SizeMedium, SizePaper:
	default:
		return out, fmt.Errorf("bench: unknown size %q (want %q, %q, or %q)", out.Size, SizeSmall, SizeMedium, SizePaper)
	}
	switch out.Shape {
	case "":
		out.Shape = ShapeConstant
	case ShapeConstant, ShapeDiurnal:
	default:
		return out, fmt.Errorf("bench: unknown shape %q (want %q or %q)", out.Shape, ShapeConstant, ShapeDiurnal)
	}
	return out, nil
}

// registry returns the kind registry the generator draws from.
func registry() *engine.Registry { return kinds.Default() }

// Kinds lists the registered request kinds in canonical (registration)
// order — the iteration order for every deterministic draw and report.
var Kinds = kinds.Default().Kinds()

// Request kinds, re-exported for convenience.
const (
	KindDeadline = kinds.KindDeadline
	KindBudget   = kinds.KindBudget
	KindTradeoff = kinds.KindTradeoff
	KindMulti    = kinds.KindMulti
)

// Request is one scheduled pricing request of any registered kind.
// Requests with the same (Kind, ProblemID) share one problem body (and
// hence one server-side fingerprint), which is what makes Cardinality a
// cache hit-rate dial.
type Request struct {
	// At is the scheduled fire time as an offset from run start (warmup
	// included: requests with At < Config.Warmup warm the cache but are
	// excluded from statistics).
	At time.Duration
	// Kind is the registry kind name.
	Kind string
	// ProblemID identifies the problem body within its kind, in
	// [0, Cardinality).
	ProblemID int
	// Spec is the problem body, generated by the kind's registered sampler;
	// it marshals to the HTTP request body.
	Spec engine.Spec

	// Campaign-scenario session script (empty on the solve scenario):
	// Steps observe+quote pairs, with StepArrivals[s] the observed worker
	// arrivals reported at step s and StepShares[s] the fraction of each
	// type's remaining tasks completed that step. All drawn from the
	// schedule seed, so a session replays identically run to run.
	Steps        int
	StepArrivals []float64
	StepShares   []float64
}

// Schedule is a fully materialized open-loop request schedule.
type Schedule struct {
	// Config is the normalized generating configuration.
	Config Config
	// Requests are sorted by At.
	Requests []Request
	// Hash is the SHA-256 over the normalized Config plus
	// (At, Kind, ProblemID) of every request — two runs are replaying the
	// same workload iff their hashes match. Covering the config matters:
	// e.g. -size changes the problem bodies without moving a single
	// arrival, so the request tuples alone would collide.
	Hash string
}

// GenerateSchedule materializes the NHPP request schedule for cfg.
// Deterministic: equal configs yield equal schedules, including problem
// bodies, across runs and platforms.
func GenerateSchedule(cfg Config) (*Schedule, error) {
	norm, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	window := norm.Warmup + norm.Duration
	windowHours := window.Hours()
	ratePerHour := norm.Rate * 3600

	var fn rate.Fn
	switch norm.Shape {
	case ShapeConstant:
		fn = rate.Constant(ratePerHour)
	case ShapeDiurnal:
		// One full sinusoidal cycle across the run window, bucketed so the
		// NHPP thinning bound stays tight. The factors average 1 over the
		// cycle, preserving the configured mean rate.
		const buckets = 12
		factors := make([]float64, buckets)
		for i := range factors {
			factors[i] = ratePerHour * (1 + 0.6*math.Sin(2*math.Pi*float64(i)/buckets))
		}
		fn = rate.NewPiecewise(windowHours/buckets, factors)
	}

	r := dist.NewRNG(norm.Seed)
	times := nhpp.New(fn).Events(r, 0, windowHours, 0)

	problems := newProblemSet(norm)
	reqs := make([]Request, 0, len(times))
	for _, t := range times {
		req := Request{
			At:   time.Duration(t * float64(time.Hour)),
			Kind: pickKind(r, norm.Mix),
		}
		req.ProblemID = r.Intn(norm.Cardinality)
		// The dedup draw is gated on the dial so dedup-free configs consume
		// the RNG stream exactly as before and keep their schedule hashes.
		if norm.CampaignDedup > 0 && r.Float64() < norm.CampaignDedup {
			req.ProblemID = 0
		}
		req.Spec = problems.spec(req.Kind, req.ProblemID)
		if norm.Scenario == ScenarioCampaign {
			req.Steps = norm.CampaignSteps
			req.StepArrivals, req.StepShares = campaignSteps(r, req.Spec, norm.CampaignSteps)
		}
		reqs = append(reqs, req)
	}
	return &Schedule{Config: norm, Requests: reqs, Hash: hashSchedule(norm, reqs)}, nil
}

// campaignSteps draws one session's observation script. Deadline campaigns
// observe Poisson arrivals around the problem's own λ_t scaled by a
// per-session drift factor — the deviation regime §5.2.5's controller
// exists for, so adaptive runs actually re-plan; other kinds observe a
// generic nonnegative stream. Completion shares stay under one half so
// sessions keep tasks outstanding across steps (quotes exercise interior
// policy states, not just the drained corner).
func campaignSteps(r *dist.RNG, spec engine.Spec, steps int) (arrivals []float64, shares []float64) {
	arrivals = make([]float64, steps)
	shares = make([]float64, steps)
	lambdas := []float64{20}
	if d, ok := spec.(*kinds.DeadlineRequest); ok {
		lambdas = d.Lambdas
	}
	drift := r.Uniform(0.6, 1.4)
	for s := 0; s < steps; s++ {
		mean := drift * lambdas[s%len(lambdas)]
		arrivals[s] = float64(dist.Poisson{Lambda: mean}.Sample(r))
		shares[s] = r.Uniform(0, 0.4)
	}
	return arrivals, shares
}

// pickKind draws a kind proportional to its mix weight, iterating kinds in
// canonical order so the draw is deterministic.
func pickKind(r *dist.RNG, m Mix) string {
	u := r.Float64() * m.total()
	acc := 0.0
	last := ""
	for _, kind := range Kinds {
		w := m[kind]
		if w <= 0 {
			continue
		}
		last = kind
		acc += w
		if u < acc {
			return kind
		}
	}
	// Floating-point edge: u landed exactly on the total; the last
	// positive-weight kind owns the boundary.
	return last
}

func hashSchedule(cfg Config, reqs []Request) string {
	h := sha256.New()
	// The normalized config pins everything the request tuples don't
	// (problem scale, mix weights, rate); json.Marshal is deterministic
	// for structs (declaration field order) and maps (sorted keys).
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		panic("bench: Config not marshalable: " + err.Error())
	}
	h.Write(cfgJSON)
	var buf [13]byte
	for _, q := range reqs {
		binary.LittleEndian.PutUint64(buf[0:8], uint64(q.At))
		buf[8] = kindByte(q.Kind)
		binary.LittleEndian.PutUint32(buf[9:13], uint32(q.ProblemID))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

func kindByte(kind string) byte {
	for i, k := range Kinds {
		if k == kind {
			return byte(i)
		}
	}
	return 0xff
}

// problemSet lazily materializes the Cardinality distinct problem bodies
// per kind through the registry's samplers. Bodies depend only on
// (seed, kind, id) — never on arrival order — so the same logical problem
// is byte-identical across schedules, shapes, and mixes, and maps to the
// same server-side fingerprint.
type problemSet struct {
	cfg   Config
	specs map[string]map[int]engine.Spec
}

func newProblemSet(cfg Config) *problemSet {
	return &problemSet{cfg: cfg, specs: make(map[string]map[int]engine.Spec)}
}

// problemSeed derives the sampler seed for (kind, id). The large odd
// multipliers spread (seed, kind, id) triples over distinct seeds;
// dist.NewRNG then mixes the seed through splitmix64, so nearby ids still
// decorrelate.
func (ps *problemSet) problemSeed(kind string, id int) int64 {
	return ps.cfg.Seed + int64(kindByte(kind)+1)*1_000_003 + int64(id)*7_919
}

func (ps *problemSet) spec(kind string, id int) engine.Spec {
	byID, ok := ps.specs[kind]
	if !ok {
		byID = make(map[int]engine.Spec)
		ps.specs[kind] = byID
	}
	if s, ok := byID[id]; ok {
		return s
	}
	def, _ := registry().Lookup(kind)
	s := def.Sample(ps.problemSeed(kind, id), string(ps.cfg.Size))
	byID[id] = s
	return s
}
