package bench

import "fmt"

// SliceSchedule returns worker `index`'s slice of a schedule partitioned
// round-robin over `numWorkers` workers by event index: worker w owns
// requests 0·n+w, 1·n+w, 2·n+w, …
//
// Round-robin by event index (rather than contiguous time blocks) keeps
// every slice statistically identical to a thinned copy of the full NHPP
// process: each worker's arrivals still span the whole run window at 1/n
// of the rate, so every slice stays open-loop and coordinated-omission-safe
// on its own, and the warmup cutoff applies to each worker exactly as it
// does to the whole.
//
// Requests keep their absolute At offsets and full problem bodies; the
// slice's Hash remains the full schedule's hash — the workload identity the
// coordinator verifies across workers — not a per-slice digest. The
// partition is exact and disjoint: the union of all numWorkers slices,
// re-interleaved by event index, is the original request sequence.
func SliceSchedule(sched *Schedule, index, numWorkers int) (*Schedule, error) {
	if numWorkers <= 0 {
		return nil, fmt.Errorf("bench: numWorkers must be positive, got %d", numWorkers)
	}
	if index < 0 || index >= numWorkers {
		return nil, fmt.Errorf("bench: worker index %d outside [0, %d)", index, numWorkers)
	}
	reqs := make([]Request, 0, (len(sched.Requests)-index+numWorkers-1)/numWorkers)
	for i := index; i < len(sched.Requests); i += numWorkers {
		reqs = append(reqs, sched.Requests[i])
	}
	return &Schedule{Config: sched.Config, Requests: reqs, Hash: sched.Hash}, nil
}
