// Package engine is the kind-generic solve engine behind the pricing
// service: a Spec interface every problem kind implements, a registry that
// maps kind names to Spec constructors and workload samplers, and an
// admission-controlled scheduler (bounded worker pool, bounded queue, load
// shedding) layered over the fingerprint-keyed LRU cache and singleflight
// deduplication the service has always had.
//
// The package deliberately knows nothing about HTTP or about any concrete
// problem kind: internal/kinds registers the paper's problem types,
// internal/server mounts the registry on /v1/solve/{kind}, and
// internal/bench samples load from the same registry — so adding a problem
// kind is one Spec implementation plus one registry entry, with zero
// per-kind code in the server, client, or load generator.
package engine

import (
	"context"
	"fmt"
)

// Spec is one solvable problem instance: the unit of work the engine
// schedules, fingerprints, and caches. Implementations are JSON-decodable
// wire structs (the registry's New constructor produces an empty one for
// the decoder to fill).
type Spec interface {
	// Kind is the registry name of the problem type ("deadline", "multi", …).
	Kind() string
	// Validate reports whether the instance is well formed and within
	// service limits; invalid specs are rejected before any solver work.
	Validate() error
	// Fingerprint returns the canonical cache key: the solver variant plus a
	// stable content hash of every parameter that influences the solved
	// artifact. Equal problems must map to equal fingerprints across
	// processes and runs. Fingerprinting an invalid spec is an error.
	Fingerprint() (string, error)
	// Solve computes the serialized artifact. It runs on an engine worker
	// goroutine; implementations may ignore ctx if their solvers are not
	// interruptible (the engine lets solves run to completion to warm the
	// cache even after the requester gives up).
	Solve(ctx context.Context) ([]byte, error)
}

// Tunable is optionally implemented by Specs whose solver accepts an
// internal-parallelism hint (e.g. the deadline MDP's worker fan-out). The
// engine applies its configured SolverParallelism before solving; the hint
// must never influence the solved artifact or the fingerprint.
type Tunable interface {
	SetSolverParallelism(workers int)
}

// KindDef is one registry entry: everything the generic layers need to
// serve and load-test a problem kind.
type KindDef struct {
	// Kind is the wire name, used in the /v1/solve/{kind} route, batch
	// items, and the bench mix.
	Kind string
	// Doc is a one-line human description for listings.
	Doc string
	// New returns an empty Spec for JSON decoding. Required.
	New func() Spec
	// Sample deterministically generates a workload problem body: equal
	// (seed, size) pairs must yield identical specs. size is a bench scale
	// name ("small", "medium", "paper"); unknown sizes fall back to small.
	// Optional — kinds without a sampler are served but not load-testable.
	Sample func(seed int64, size string) Spec
}

// Registry maps kind names to definitions, preserving registration order so
// every listing (routes, metrics, bench mixes) is deterministic. Register
// all kinds before sharing a Registry across goroutines; lookups are
// read-only thereafter.
type Registry struct {
	defs  map[string]KindDef
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{defs: make(map[string]KindDef)}
}

// Register adds a kind definition. Duplicate names and nil constructors are
// programming errors and panic.
func (r *Registry) Register(def KindDef) {
	if def.Kind == "" || def.New == nil {
		panic("engine: KindDef needs a Kind and a New constructor")
	}
	if _, dup := r.defs[def.Kind]; dup {
		panic(fmt.Sprintf("engine: kind %q registered twice", def.Kind))
	}
	r.defs[def.Kind] = def
	r.order = append(r.order, def.Kind)
}

// Lookup returns the definition for kind.
func (r *Registry) Lookup(kind string) (KindDef, bool) {
	def, ok := r.defs[kind]
	return def, ok
}

// Kinds lists the registered kind names in registration order.
func (r *Registry) Kinds() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}
