package engine

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := newLRUCache(3)
	for i := 1; i <= 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	// Touch k1 so k2 becomes the eviction victim.
	if _, ok := c.Get("k1"); !ok {
		t.Fatal("k1 missing before eviction")
	}
	c.Put("k4", []byte{4})
	if _, ok := c.Get("k2"); ok {
		t.Error("k2 should have been evicted as least recently used")
	}
	for _, k := range []string{"k1", "k3", "k4"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s should have survived eviction", k)
		}
	}
	if got := c.Len(); got != 3 {
		t.Errorf("Len = %d, want 3", got)
	}
}

func TestCachePutRefreshes(t *testing.T) {
	c := newLRUCache(2)
	c.Put("a", []byte{1})
	c.Put("b", []byte{2})
	c.Put("a", []byte{3}) // refresh both value and recency
	c.Put("c", []byte{4}) // evicts b, not a
	if v, ok := c.Get("a"); !ok || v[0] != 3 {
		t.Errorf("a = %v, %v; want updated value 3", v, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := newLRUCache(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (g+i)%32)
				c.Put(k, []byte(k))
				if v, ok := c.Get(k); ok && string(v) != k {
					t.Errorf("got %q for key %q", v, k)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.Len(); got > 16 {
		t.Errorf("cache grew to %d entries, cap is 16", got)
	}
}
