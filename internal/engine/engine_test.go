package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeSpec is a controllable Spec for scheduler tests.
type fakeSpec struct {
	kind   string
	id     string
	block  chan struct{} // non-nil: Solve waits until closed
	solves *atomic.Int64
	fail   error
	panics bool
}

func (s *fakeSpec) Kind() string { return s.kind }

func (s *fakeSpec) Validate() error {
	if s.id == "" {
		return errors.New("fake: empty id")
	}
	return nil
}

func (s *fakeSpec) Fingerprint() (string, error) {
	if err := s.Validate(); err != nil {
		return "", err
	}
	return s.kind + "/test:" + s.id, nil
}

func (s *fakeSpec) Solve(ctx context.Context) ([]byte, error) {
	if s.solves != nil {
		s.solves.Add(1)
	}
	if s.block != nil {
		<-s.block
	}
	if s.panics {
		panic("fake solver exploded")
	}
	if s.fail != nil {
		return nil, s.fail
	}
	return []byte("artifact:" + s.id), nil
}

func newTestEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	e := New(opts)
	t.Cleanup(e.Close)
	return e
}

// TestOneWorkerManyCallers is the admission-control liveness claim: N
// concurrent requests for distinct problems on a single-worker engine all
// complete (run under -race in CI).
func TestOneWorkerManyCallers(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1})
	const callers = 32
	var wg sync.WaitGroup
	errs := make([]error, callers)
	vals := make([][]byte, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := e.Solve(context.Background(), &fakeSpec{kind: "a", id: fmt.Sprint(i)})
			errs[i] = err
			if res != nil {
				vals[i] = res.Value
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if want := "artifact:" + fmt.Sprint(i); string(vals[i]) != want {
			t.Errorf("caller %d got %q, want %q", i, vals[i], want)
		}
	}
	m := e.Metrics()
	if m.Solves != callers {
		t.Errorf("solves = %d, want %d", m.Solves, callers)
	}
	if m.SolvesByKind["a"] != callers {
		t.Errorf("solves{kind=a} = %d, want %d", m.SolvesByKind["a"], callers)
	}
	if m.QueueDepth != 0 || m.InFlight != 0 {
		t.Errorf("queue depth %d / in-flight %d after drain, want 0/0", m.QueueDepth, m.InFlight)
	}
}

// TestSingleflightOneSolve: concurrent identical specs perform exactly one
// solve, share byte-identical artifacts, and account every caller as
// exactly one of {cache hit, singleflight join, the solve itself}.
func TestSingleflightOneSolve(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 2})
	var solves atomic.Int64
	block := make(chan struct{})

	const callers = 40
	var started, wg sync.WaitGroup
	results := make([]*Result, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		started.Add(1)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started.Done()
			results[i], errs[i] = e.Solve(context.Background(),
				&fakeSpec{kind: "a", id: "same", block: block, solves: &solves})
		}(i)
	}
	started.Wait()
	time.Sleep(50 * time.Millisecond) // let callers reach the flight table
	close(block)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if n := solves.Load(); n != 1 {
		t.Fatalf("solver ran %d times for %d identical requests, want 1", n, callers)
	}
	first := results[0]
	for i, r := range results {
		if string(r.Value) != string(first.Value) {
			t.Fatalf("caller %d artifact differs", i)
		}
		if r.Fingerprint != first.Fingerprint {
			t.Errorf("caller %d fingerprint %q != %q", i, r.Fingerprint, first.Fingerprint)
		}
	}
	m := e.Metrics()
	if m.Solves != 1 {
		t.Errorf("metrics solves = %d, want 1", m.Solves)
	}
	if got := m.CacheHits + m.FlightShared; got != callers-1 {
		t.Errorf("hits (%d) + joins (%d) = %d, want %d", m.CacheHits, m.FlightShared, got, callers-1)
	}
}

// TestQueueOverflowSheds: with the one worker blocked and the queue full,
// the next distinct solve returns ErrQueueFull immediately — no hang, no
// goroutine pile-up — and the rejection is counted per kind. Once the
// worker drains, the same spec is admitted again.
func TestQueueOverflowSheds(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1, QueueDepth: 1})
	block := make(chan struct{})

	var wg sync.WaitGroup
	solve := func(id string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e.Solve(context.Background(), &fakeSpec{kind: "a", id: id, block: block}); err != nil {
				t.Errorf("admitted solve %s failed: %v", id, err)
			}
		}()
	}
	solve("occupies-worker")
	waitFor(t, func() bool { return e.Metrics().InFlight == 1 })
	solve("fills-queue")
	waitFor(t, func() bool { return e.Metrics().QueueDepth == 1 })

	done := make(chan error, 1)
	go func() {
		_, err := e.Solve(context.Background(), &fakeSpec{kind: "a", id: "overflows"})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrQueueFull) {
			t.Fatalf("overflow solve returned %v, want ErrQueueFull", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("overflow solve hung instead of shedding")
	}
	if got := e.Metrics().RejectedByKind["a"]; got != 1 {
		t.Errorf("rejected{kind=a} = %d, want 1", got)
	}

	// Joining an in-flight identical solve needs no queue slot even at
	// capacity.
	joined := make(chan error, 1)
	go func() {
		_, err := e.Solve(context.Background(), &fakeSpec{kind: "a", id: "occupies-worker"})
		joined <- err
	}()
	waitFor(t, func() bool { return e.Metrics().FlightShared == 1 })

	close(block)
	wg.Wait()
	if err := <-joined; err != nil {
		t.Fatalf("joiner failed: %v", err)
	}
	// The shed spec is admitted once capacity frees up.
	if _, err := e.Solve(context.Background(), &fakeSpec{kind: "a", id: "overflows"}); err != nil {
		t.Fatalf("retry after shed failed: %v", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}

// TestWarmHitBypassesQueue: a cached artifact is served even when the
// worker pool is wedged and the queue is full.
func TestWarmHitBypassesQueue(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1, QueueDepth: 1})
	if _, err := e.Solve(context.Background(), &fakeSpec{kind: "a", id: "hot"}); err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	defer close(block)
	go e.Solve(context.Background(), &fakeSpec{kind: "a", id: "wedge-worker", block: block})
	waitFor(t, func() bool { return e.Metrics().InFlight == 1 })
	go e.Solve(context.Background(), &fakeSpec{kind: "a", id: "wedge-queue", block: block})
	waitFor(t, func() bool { return e.Metrics().QueueDepth == 1 })

	res, err := e.Solve(context.Background(), &fakeSpec{kind: "a", id: "hot"})
	if err != nil {
		t.Fatalf("warm hit failed under full queue: %v", err)
	}
	if !res.CacheHit || res.SolveMillis != 0 {
		t.Errorf("warm hit reported CacheHit=%v SolveMillis=%v, want true/0", res.CacheHit, res.SolveMillis)
	}
}

// TestInvalidSpecRejectedUpFront: validation failures never reach the
// queue, the cache, or the solver.
func TestInvalidSpecRejectedUpFront(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1})
	_, err := e.Solve(context.Background(), &fakeSpec{kind: "a", id: ""})
	if !IsInvalidSpec(err) {
		t.Fatalf("err = %v, want InvalidSpecError", err)
	}
	if m := e.Metrics(); m.Solves != 0 || m.CacheEntries != 0 {
		t.Errorf("invalid spec touched the engine: %+v", m)
	}
}

// TestSolverPanicContained: a panicking solve fails its own callers with an
// error and leaves the key reusable.
func TestSolverPanicContained(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1})
	_, err := e.Solve(context.Background(), &fakeSpec{kind: "a", id: "boom", panics: true})
	if err == nil || !strings.Contains(err.Error(), "solver panic") {
		t.Fatalf("err = %v, want a contained panic error", err)
	}
	res, err := e.Solve(context.Background(), &fakeSpec{kind: "a", id: "boom"})
	if err != nil || string(res.Value) != "artifact:boom" {
		t.Fatalf("key unusable after panic: %v, %v", res, err)
	}
}

// TestSolveErrorNotCached: failed solves are not cached; the next request
// re-runs the solver.
func TestSolveErrorNotCached(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1})
	boom := errors.New("numerical meltdown")
	if _, err := e.Solve(context.Background(), &fakeSpec{kind: "a", id: "x", fail: boom}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the solver's error", err)
	}
	res, err := e.Solve(context.Background(), &fakeSpec{kind: "a", id: "x"})
	if err != nil || res.CacheHit {
		t.Fatalf("retry after failure: res=%+v err=%v, want a fresh solve", res, err)
	}
	if m := e.Metrics(); m.Solves != 2 {
		t.Errorf("solves = %d, want 2", m.Solves)
	}
}

// TestCanceledWaiterStillWarmsCache mirrors the service's 504 semantics:
// the requester gives up, the solve finishes anyway, the retry is warm.
func TestCanceledWaiterStillWarmsCache(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1})
	block := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.Solve(ctx, &fakeSpec{kind: "a", id: "slow", block: block})
		done <- err
	}()
	waitFor(t, func() bool { return e.Metrics().InFlight == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(block)
	waitFor(t, func() bool { return e.Metrics().CacheEntries == 1 })
	res, err := e.Solve(context.Background(), &fakeSpec{kind: "a", id: "slow"})
	if err != nil || !res.CacheHit {
		t.Fatalf("retry res=%+v err=%v, want a warm hit", res, err)
	}
}

// TestCloseFailsQueuedCalls: Close fails queued-but-unstarted calls fast
// instead of hanging their waiters, and subsequent solves refuse cleanly.
func TestCloseFailsQueuedCalls(t *testing.T) {
	e := New(Options{Workers: 1, QueueDepth: 4})
	block := make(chan struct{})
	defer close(block)
	go e.Solve(context.Background(), &fakeSpec{kind: "a", id: "wedge", block: block})
	waitFor(t, func() bool { return e.Metrics().InFlight == 1 })
	queued := make(chan error, 1)
	go func() {
		_, err := e.Solve(context.Background(), &fakeSpec{kind: "a", id: "queued"})
		queued <- err
	}()
	waitFor(t, func() bool { return e.Metrics().QueueDepth == 1 })
	e.Close()
	select {
	case err := <-queued:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("queued call returned %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued call hung across Close")
	}
	if _, err := e.Solve(context.Background(), &fakeSpec{kind: "a", id: "late"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close solve returned %v, want ErrClosed", err)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Register(KindDef{Kind: "a", New: func() Spec { return &fakeSpec{kind: "a"} }})
	r.Register(KindDef{Kind: "b", New: func() Spec { return &fakeSpec{kind: "b"} }})
	if got := r.Kinds(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Kinds() = %v, want [a b] in registration order", got)
	}
	if _, ok := r.Lookup("a"); !ok {
		t.Error("registered kind not found")
	}
	if _, ok := r.Lookup("zzz"); ok {
		t.Error("unregistered kind found")
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Register(KindDef{Kind: "a", New: func() Spec { return &fakeSpec{kind: "a"} }})
}
