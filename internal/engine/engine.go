package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"crowdpricing/internal/telemetry"
)

// Defaults for Options zero values.
const (
	// DefaultCacheSize bounds the artifact cache.
	DefaultCacheSize = 1024
	// DefaultQueueDepth bounds how many distinct cold solves may wait for a
	// worker before the engine sheds load with ErrQueueFull. Joiners of an
	// in-flight identical solve never occupy a slot, so the queue bounds
	// distinct work, not concurrent requests.
	DefaultQueueDepth = 4096
)

// Options configures an Engine. The zero value is production-ready.
type Options struct {
	// CacheSize is the maximum number of cached artifacts
	// (0 = DefaultCacheSize).
	CacheSize int
	// Workers is the solve worker-pool size (0 = GOMAXPROCS). Solves are
	// CPU-bound, so more workers than cores buys queueing, not throughput.
	Workers int
	// QueueDepth bounds the cold-solve admission queue
	// (0 = DefaultQueueDepth).
	QueueDepth int
	// SolverParallelism is the per-solve internal parallelism hint applied
	// to Tunable specs (0 = the solver's own default).
	SolverParallelism int
}

// ErrQueueFull is returned when the admission queue is at capacity: the
// engine sheds the request instead of queueing unbounded work. Callers
// should surface it as backpressure (HTTP 429) and retry later.
var ErrQueueFull = errors.New("engine: solve queue is full, retry later")

// ErrClosed is returned by Solve after Close.
var ErrClosed = errors.New("engine: closed")

// InvalidSpecError marks specs rejected before any solver ran — validation
// and fingerprinting failures, which are the requester's fault.
type InvalidSpecError struct{ Err error }

func (e *InvalidSpecError) Error() string { return e.Err.Error() }
func (e *InvalidSpecError) Unwrap() error { return e.Err }

// IsInvalidSpec reports whether err marks a spec rejected before solving.
func IsInvalidSpec(err error) bool {
	var inv *InvalidSpecError
	return errors.As(err, &inv)
}

// Result is a completed solve.
type Result struct {
	// Fingerprint is the artifact's cache key (Spec.Fingerprint).
	Fingerprint string
	// Value is the serialized artifact, byte-identical for every caller of
	// the same fingerprint.
	Value []byte
	// CacheHit reports whether the artifact was served from the warm cache
	// without waiting on any solver.
	CacheHit bool
	// SolveMillis is the time this call spent waiting for the solver (the
	// full solve for the caller that triggered it, the residual wait for
	// callers deduplicated onto it). Zero on a warm cache hit.
	SolveMillis float64
}

// call is one in-flight cold solve; concurrent requests for the same
// fingerprint share a single call.
type call struct {
	spec Spec
	key  string
	kind string
	done chan struct{}
	val  []byte
	err  error
	// cached marks calls resolved by the worker's cache double-check: the
	// artifact landed between the requester's miss and the dequeue, so no
	// caller of this call waited on a solver.
	cached bool
	// started is the telemetry session-clock instant a worker dequeued
	// the call; waiters read it after done closes to split their wait into
	// queue-wait and solve spans. Zero if the call never reached a worker.
	started int64
}

// kindCounters holds the per-kind observability counters.
type kindCounters struct {
	solves   atomic.Int64
	rejected atomic.Int64
}

// Engine is the admission-controlled solve scheduler: a fingerprint-keyed
// LRU cache in front of a singleflight table in front of a bounded queue
// feeding a bounded worker pool. Warm hits bypass the queue entirely and
// stay in the microsecond range; cold solves are admitted up to QueueDepth
// and shed with ErrQueueFull beyond it, so a burst of expensive problems
// degrades into fast, explicit backpressure instead of unbounded goroutines.
//
// Admission has two lanes. Solve enqueues on the interactive lane;
// SolveBatch enqueues on the background lane, which workers only drain
// when no interactive work is waiting — so bulk pre-solves (an adaptive
// campaign's 11-factor bank) cannot monopolize the pool against
// interactive create/quote solves. Both lanes share the singleflight
// table: identical work submitted on different lanes still costs one
// solve. Create with New; an Engine is safe for arbitrary concurrent use.
type Engine struct {
	opts  Options
	cache *lruCache

	mu      sync.Mutex
	calls   map[string]*call
	closed  bool
	queue   chan *call
	bgQueue chan *call
	quit    chan struct{}

	inFlight     atomic.Int64
	cacheHits    atomic.Int64 // calls served from the cache (warm or double-check)
	cacheMisses  atomic.Int64 // calls that waited on a solver (own or joined)
	solves       atomic.Int64 // solver executions actually performed
	flightShared atomic.Int64 // calls deduplicated onto another call's solve

	kindMu sync.Mutex
	byKind map[string]*kindCounters
}

// New builds an Engine and starts its worker pool; see Options for the
// knobs. Call Close to stop the workers when the engine is no longer
// needed.
func New(opts Options) *Engine {
	if opts.CacheSize <= 0 {
		opts.CacheSize = DefaultCacheSize
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = DefaultQueueDepth
	}
	e := &Engine{
		opts:    opts,
		cache:   newLRUCache(opts.CacheSize),
		calls:   make(map[string]*call),
		queue:   make(chan *call, opts.QueueDepth),
		bgQueue: make(chan *call, opts.QueueDepth),
		quit:    make(chan struct{}),
		byKind:  make(map[string]*kindCounters),
	}
	for i := 0; i < opts.Workers; i++ {
		// With more than one worker, worker 0 serves the interactive lane
		// exclusively: even a pool saturated with background pre-solves keeps
		// one worker answering interactive solves. A single-worker pool must
		// serve both lanes or SolveBatch would never complete.
		go e.worker(opts.Workers > 1 && i == 0)
	}
	return e
}

// Solve resolves spec to its artifact: from the cache when warm, otherwise
// by admitting one solve per fingerprint to the worker pool and sharing its
// result among all concurrent callers. A ctx that expires mid-wait returns
// ctx.Err() while the solve keeps running and warms the cache for the
// retry. Queue overflow returns ErrQueueFull without enqueueing anything.
func (e *Engine) Solve(ctx context.Context, spec Spec) (*Result, error) {
	return e.solve(ctx, spec, e.queue)
}

// SolveBatch is Solve on the background lane: identical semantics (cache,
// singleflight, ErrQueueFull shedding), but the admitted call waits behind
// all interactive work. Use it for bulk pre-solves whose latency nobody is
// sitting on — adaptive bank factors, prefetches, warmups.
func (e *Engine) SolveBatch(ctx context.Context, spec Spec) (*Result, error) {
	return e.solve(ctx, spec, e.bgQueue)
}

func (e *Engine) solve(ctx context.Context, spec Spec, lane chan *call) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, &InvalidSpecError{err}
	}
	key, err := spec.Fingerprint()
	if err != nil {
		return nil, &InvalidSpecError{err}
	}
	if val, ok := e.cache.Get(key); ok {
		e.cacheHits.Add(1)
		return &Result{Fingerprint: key, Value: val, CacheHit: true}, nil
	}
	if tn, ok := spec.(Tunable); ok && e.opts.SolverParallelism > 0 {
		tn.SetSolverParallelism(e.opts.SolverParallelism)
	}

	//crowdlint:allow determinism -- SolveMillis is wall-clock instrumentation, not part of the artifact
	begin := time.Now()
	tr := telemetry.FromContext(ctx)
	enqueued := tr.Now()
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	c, joined := e.calls[key]
	if !joined {
		c = &call{spec: spec, key: key, kind: spec.Kind(), done: make(chan struct{})}
		// The non-blocking send happens under the same lock as the
		// registration, so a rejected call is never visible to joiners.
		select {
		case lane <- c:
			e.calls[key] = c
		default:
			e.mu.Unlock()
			e.counters(c.kind).rejected.Add(1)
			return nil, ErrQueueFull
		}
	}
	e.mu.Unlock()
	if joined {
		e.flightShared.Add(1)
		e.cacheMisses.Add(1)
	}

	select {
	case <-ctx.Done():
		// The call keeps running on its worker and warms the cache, so the
		// caller's retry is free.
		return nil, ctx.Err()
	case <-c.done:
	}
	if c.err != nil {
		return nil, c.err
	}
	if tr != nil {
		// c.started was written before done closed, so the plain read is
		// ordered. Joiners that arrived after the dequeue clamp to a
		// zero-length queue wait inside Observe.
		if started := c.started; started > 0 {
			tr.Observe(telemetry.StageQueueWait, time.Duration(started-enqueued))
			tr.ObserveSince(telemetry.StageSolve, started)
		}
	}
	res := &Result{Fingerprint: key, Value: c.val, CacheHit: c.cached}
	if !c.cached {
		//crowdlint:allow determinism -- SolveMillis is wall-clock instrumentation, not part of the artifact
		res.SolveMillis = float64(time.Since(begin)) / float64(time.Millisecond)
	}
	return res, nil
}

func (e *Engine) worker(interactiveOnly bool) {
	for {
		if interactiveOnly {
			select {
			case <-e.quit:
				return
			case c := <-e.queue:
				e.serve(c)
			}
			continue
		}
		// Biased select: drain the interactive lane dry before touching the
		// background lane, so queued bank pre-solves only run on capacity no
		// interactive caller is waiting for.
		select {
		case <-e.quit:
			return
		case c := <-e.queue:
			e.serve(c)
		default:
			select {
			case <-e.quit:
				return
			case c := <-e.queue:
				e.serve(c)
			case c := <-e.bgQueue:
				e.serve(c)
			}
		}
	}
}

func (e *Engine) serve(c *call) {
	e.inFlight.Add(1)
	e.run(c)
	e.inFlight.Add(-1)
}

// run executes one admitted call and publishes its result.
func (e *Engine) run(c *call) {
	c.started = telemetry.Nanotime()
	defer func() {
		// A panic on a pathological problem must not take down the daemon
		// or leave the call registered (which would hang every joiner).
		if r := recover(); r != nil {
			c.err = fmt.Errorf("solver panic: %v", r)
		}
		e.mu.Lock()
		delete(e.calls, c.key)
		e.mu.Unlock()
		close(c.done)
	}()
	// Double-check the cache: the artifact may have landed between the
	// requester's miss and this dequeue. Without the re-check, back-to-back
	// identical requests could perform two solves instead of one.
	if val, ok := e.cache.Get(c.key); ok {
		e.cacheHits.Add(1)
		c.val, c.cached = val, true
		return
	}
	e.cacheMisses.Add(1)
	e.solves.Add(1)
	e.counters(c.kind).solves.Add(1)
	val, err := c.spec.Solve(context.Background())
	if err != nil {
		c.err = err
		return
	}
	e.cache.Put(c.key, val)
	c.val = val
}

// fail completes a call without running it (shutdown path).
func (e *Engine) fail(c *call, err error) {
	c.err = err
	e.mu.Lock()
	delete(e.calls, c.key)
	e.mu.Unlock()
	close(c.done)
}

// Close stops the worker pool and fails any still-queued calls with
// ErrClosed. Calls already being solved run to completion. Subsequent
// Solve calls that miss the cache return ErrClosed.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	close(e.quit)
	for {
		select {
		case c := <-e.queue:
			e.fail(c, ErrClosed)
		case c := <-e.bgQueue:
			e.fail(c, ErrClosed)
		default:
			return
		}
	}
}

func (e *Engine) counters(kind string) *kindCounters {
	e.kindMu.Lock()
	defer e.kindMu.Unlock()
	kc, ok := e.byKind[kind]
	if !ok {
		kc = &kindCounters{}
		e.byKind[kind] = kc
	}
	return kc
}

// Metrics is a point-in-time read of the engine's observability surface.
type Metrics struct {
	// QueueDepth is the number of admitted interactive calls waiting for a
	// worker; BatchQueueDepth the same for the background lane.
	QueueDepth      int64
	BatchQueueDepth int64
	// InFlight is the number of calls currently occupying a worker.
	InFlight int64

	CacheHits    int64
	CacheMisses  int64
	Solves       int64
	FlightShared int64
	CacheEntries int64

	// SolvesByKind and RejectedByKind split solver executions and
	// queue-overflow rejections per problem kind.
	SolvesByKind   map[string]int64
	RejectedByKind map[string]int64
}

// Metrics returns the current counter and gauge values.
func (e *Engine) Metrics() Metrics {
	m := Metrics{
		QueueDepth:      int64(len(e.queue)),
		BatchQueueDepth: int64(len(e.bgQueue)),
		InFlight:        e.inFlight.Load(),
		CacheHits:       e.cacheHits.Load(),
		CacheMisses:     e.cacheMisses.Load(),
		Solves:          e.solves.Load(),
		FlightShared:    e.flightShared.Load(),
		CacheEntries:    int64(e.cache.Len()),
		SolvesByKind:    make(map[string]int64),
		RejectedByKind:  make(map[string]int64),
	}
	e.kindMu.Lock()
	defer e.kindMu.Unlock()
	for kind, kc := range e.byKind {
		m.SolvesByKind[kind] = kc.solves.Load()
		m.RejectedByKind[kind] = kc.rejected.Load()
	}
	return m
}
