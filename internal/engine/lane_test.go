package engine

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// orderSpec records its solve order into a shared log.
type orderSpec struct {
	fakeSpec
	mu  *sync.Mutex
	log *[]string
}

func (s *orderSpec) Solve(ctx context.Context) ([]byte, error) {
	s.mu.Lock()
	*s.log = append(*s.log, s.id)
	s.mu.Unlock()
	return s.fakeSpec.Solve(ctx)
}

// TestSolveBatchSharesCacheAndFlight: the background lane is the same
// engine — a batch solve warms the cache for interactive callers, and an
// in-flight interactive solve dedups a concurrent batch request for the
// identical problem (one solver execution total).
func TestSolveBatchSharesCacheAndFlight(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1})
	var solves atomic.Int64

	res, err := e.SolveBatch(context.Background(), &fakeSpec{kind: "a", id: "x", solves: &solves})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Error("first batch solve reported a cache hit")
	}
	warm, err := e.Solve(context.Background(), &fakeSpec{kind: "a", id: "x", solves: &solves})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit || solves.Load() != 1 {
		t.Errorf("interactive solve after a batch solve: hit=%v solves=%d, want a warm hit off 1 solve",
			warm.CacheHit, solves.Load())
	}

	// Cross-lane singleflight: block an interactive solve, then submit the
	// identical spec on the batch lane; both must resolve from one execution.
	block := make(chan struct{})
	first := make(chan error, 1)
	go func() {
		_, err := e.Solve(context.Background(), &fakeSpec{kind: "a", id: "y", solves: &solves, block: block})
		first <- err
	}()
	waitFor(t, func() bool { return e.Metrics().InFlight == 1 })
	second := make(chan error, 1)
	go func() {
		_, err := e.SolveBatch(context.Background(), &fakeSpec{kind: "a", id: "y", solves: &solves, block: block})
		second <- err
	}()
	waitFor(t, func() bool { return e.Metrics().FlightShared == 1 })
	close(block)
	for i, ch := range []chan error{first, second} {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatalf("caller %d: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("caller %d hung", i)
		}
	}
	if n := solves.Load(); n != 2 {
		t.Errorf("%d solver executions, want 2 (x once, y once)", n)
	}
}

// TestInteractiveLaneHasPriority: with the single worker pinned on a
// background solve and both lanes holding queued work, the freed worker
// must drain the interactive call before the remaining background ones.
func TestInteractiveLaneHasPriority(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1, QueueDepth: 16})
	var mu sync.Mutex
	var order []string
	spec := func(id string, block chan struct{}) *orderSpec {
		return &orderSpec{fakeSpec: fakeSpec{kind: "a", id: id, block: block}, mu: &mu, log: &order}
	}

	gate := make(chan struct{})
	var wg sync.WaitGroup
	solve := func(s *orderSpec, lane func(context.Context, Spec) (*Result, error)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := lane(context.Background(), s); err != nil {
				t.Error(err)
			}
		}()
	}
	solve(spec("pin", gate), e.SolveBatch)
	waitFor(t, func() bool { return e.Metrics().InFlight == 1 })
	for _, id := range []string{"bg1", "bg2", "bg3"} {
		solve(spec(id, nil), e.SolveBatch)
	}
	waitFor(t, func() bool { return e.Metrics().BatchQueueDepth == 3 })
	solve(spec("urgent", nil), e.Solve)
	waitFor(t, func() bool { return e.Metrics().QueueDepth == 1 })
	close(gate)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(order) != 5 || order[0] != "pin" || order[1] != "urgent" {
		t.Fatalf("solve order %v, want pin first and urgent ahead of every queued background solve", order)
	}
}
