package engine

import (
	"container/list"
	"sync"
)

// lruCache is a thread-safe LRU over serialized solve artifacts, keyed by
// the spec's canonical fingerprint. Values are the exact bytes served to
// clients, so a warm hit is a map lookup plus a write — no re-marshaling —
// and every caller of the same key receives byte-identical artifacts.
type lruCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	val []byte
}

func newLRUCache(max int) *lruCache {
	if max < 1 {
		max = 1
	}
	return &lruCache{
		max:   max,
		ll:    list.New(),
		items: make(map[string]*list.Element, max),
	}
}

// Get returns the cached bytes for key and refreshes its recency.
func (c *lruCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put inserts or refreshes key, evicting the least recently used entries
// when the cache exceeds its capacity.
func (c *lruCache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
