// Package stats provides the small statistical toolkit the experiments
// need: simple and multiple least-squares regression (Table 2, Figure 5),
// summary statistics, histograms (Figure 11), quantiles, and empirical CDFs
// (Figures 13 and 14).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrSingular is returned when a regression design matrix is singular or the
// sample is too small for the requested fit.
var ErrSingular = errors.New("stats: singular or underdetermined system")

// LinearFit is the result of a simple least-squares regression
// y = Slope·x + Intercept.
type LinearFit struct {
	Slope     float64
	Intercept float64
	// R2 is the coefficient of determination.
	R2 float64
}

// SimpleRegression fits y = a·x + b by ordinary least squares. It returns
// ErrSingular if fewer than two points are supplied or all x are identical.
func SimpleRegression(x, y []float64) (LinearFit, error) {
	if len(x) != len(y) {
		return LinearFit{}, errors.New("stats: mismatched sample lengths")
	}
	n := float64(len(x))
	if len(x) < 2 {
		return LinearFit{}, ErrSingular
	}
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, ErrSingular
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	r2 := 0.0
	if syy > 0 {
		r2 = sxy * sxy / (sxx * syy)
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// MultipleRegression fits y = Σ beta_j x_j by ordinary least squares via the
// normal equations solved with Gaussian elimination. Each row of x is one
// observation; include a constant-1 column for an intercept.
func MultipleRegression(x [][]float64, y []float64) ([]float64, error) {
	if len(x) != len(y) || len(x) == 0 {
		return nil, errors.New("stats: mismatched or empty sample")
	}
	p := len(x[0])
	if len(x) < p {
		return nil, ErrSingular
	}
	// Normal equations: (XᵀX) beta = Xᵀy.
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p)
	}
	xty := make([]float64, p)
	for r, row := range x {
		if len(row) != p {
			return nil, errors.New("stats: ragged design matrix")
		}
		for i := 0; i < p; i++ {
			xty[i] += row[i] * y[r]
			for j := 0; j < p; j++ {
				xtx[i][j] += row[i] * row[j]
			}
		}
	}
	return SolveLinear(xtx, xty)
}

// SolveLinear solves the dense square system A·x = b by Gaussian elimination
// with partial pivoting. A and b are not modified.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, errors.New("stats: bad system dimensions")
	}
	m := make([][]float64, n)
	for i := range m {
		if len(a[i]) != n {
			return nil, errors.New("stats: non-square matrix")
		}
		m[i] = make([]float64, n+1)
		copy(m[i], a[i])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := m[i][n]
		for j := i + 1; j < n; j++ {
			sum -= m[i][j] * x[j]
		}
		x[i] = sum / m[i][i]
	}
	return x, nil
}

// Summary holds the basic moments of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes the summary of xs. The standard deviation is the sample
// (n-1) estimator; for n < 2 it is 0.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	if len(xs) == 0 {
		s.Min, s.Max = 0, 0
		return s
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// Quantile returns the q-quantile (q in [0,1]) of xs using linear
// interpolation between order statistics. It panics on an empty sample.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: quantile of empty sample")
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	if q <= 0 {
		return cp[0]
	}
	if q >= 1 {
		return cp[len(cp)-1]
	}
	pos := q * float64(len(cp)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(cp) {
		return cp[lo]
	}
	return cp[lo]*(1-frac) + cp[lo+1]*frac
}

// Histogram bins xs into equal-width bins over [lo, hi]. Values outside the
// range are clamped into the edge bins. It returns the bin counts and the
// bin edges (len bins+1).
func Histogram(xs []float64, lo, hi float64, bins int) (counts []int, edges []float64) {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	counts = make([]int, bins)
	edges = make([]float64, bins+1)
	w := (hi - lo) / float64(bins)
	for i := range edges {
		edges[i] = lo + float64(i)*w
	}
	for _, x := range xs {
		i := int(math.Floor((x - lo) / w))
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		counts[i]++
	}
	return counts, edges
}

// ECDF returns the empirical CDF of xs evaluated at the sorted sample
// points: Points[i] is a sample value and Cum[i] = P(X <= Points[i]).
type ECDF struct {
	Points []float64
	Cum    []float64
}

// NewECDF builds the empirical CDF of xs.
func NewECDF(xs []float64) ECDF {
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	cum := make([]float64, len(cp))
	for i := range cp {
		cum[i] = float64(i+1) / float64(len(cp))
	}
	return ECDF{Points: cp, Cum: cum}
}

// At returns the empirical CDF value at x.
func (e ECDF) At(x float64) float64 {
	i := sort.SearchFloat64s(e.Points, math.Nextafter(x, math.Inf(1)))
	if i == 0 {
		return 0
	}
	return e.Cum[i-1]
}

// Mean returns the arithmetic mean of xs, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
