package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSimpleRegressionExactLine(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{1, 3, 5, 7, 9} // y = 2x + 1
	fit, err := SimpleRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-1) > 1e-12 {
		t.Errorf("fit = %+v, want slope 2 intercept 1", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
}

func TestSimpleRegressionNoisy(t *testing.T) {
	// Deterministic pseudo-noise around y = -3x + 10.
	var x, y []float64
	for i := 0; i < 200; i++ {
		xi := float64(i) / 10
		noise := math.Sin(float64(i)*12.9898) * 0.5
		x = append(x, xi)
		y = append(y, -3*xi+10+noise)
	}
	fit, err := SimpleRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope+3) > 0.05 || math.Abs(fit.Intercept-10) > 0.3 {
		t.Errorf("fit = %+v", fit)
	}
}

func TestSimpleRegressionErrors(t *testing.T) {
	if _, err := SimpleRegression([]float64{1}, []float64{1}); err == nil {
		t.Error("want error for single point")
	}
	if _, err := SimpleRegression([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("want error for constant x")
	}
	if _, err := SimpleRegression([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("want error for mismatched lengths")
	}
}

func TestMultipleRegressionRecoversCoefficients(t *testing.T) {
	// y = 2*x1 - 5*x2 + 7 with three regressors (incl. intercept column).
	var x [][]float64
	var y []float64
	for i := 0; i < 50; i++ {
		x1 := float64(i % 7)
		x2 := float64((i * 3) % 11)
		x = append(x, []float64{x1, x2, 1})
		y = append(y, 2*x1-5*x2+7)
	}
	beta, err := MultipleRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, -5, 7}
	for i := range want {
		if math.Abs(beta[i]-want[i]) > 1e-9 {
			t.Errorf("beta[%d] = %v, want %v", i, beta[i], want[i])
		}
	}
}

func TestMultipleRegressionSingular(t *testing.T) {
	// Perfectly collinear columns.
	x := [][]float64{{1, 2}, {2, 4}, {3, 6}}
	y := []float64{1, 2, 3}
	if _, err := MultipleRegression(x, y); err == nil {
		t.Error("want singular error")
	}
}

func TestSolveLinearKnownSystem(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Solution: x = 1, y = 3.
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestSolveLinearPropertyResidual(t *testing.T) {
	f := func(seed int64) bool {
		// Build a diagonally dominant 4x4 system (always solvable).
		n := 4
		a := make([][]float64, n)
		b := make([]float64, n)
		s := seed
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s%1000) / 100
		}
		for i := range a {
			a[i] = make([]float64, n)
			rowSum := 0.0
			for j := range a[i] {
				a[i][j] = next()
				rowSum += math.Abs(a[i][j])
			}
			a[i][i] += rowSum + 1
			b[i] = next()
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := range a {
			r := -b[i]
			for j := range x {
				r += a[i][j] * x[j]
			}
			if math.Abs(r) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Errorf("summary = %+v", s)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.StdDev-want) > 1e-12 {
		t.Errorf("stddev = %v, want %v", s.StdDev, want)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// The input must not be mutated.
	if xs[0] != 4 {
		t.Error("Quantile mutated its input")
	}
}

func TestHistogram(t *testing.T) {
	counts, edges := Histogram([]float64{0.5, 1.5, 1.7, 2.5, -10, 10}, 0, 3, 3)
	want := []int{2, 2, 2} // -10 clamps low, 10 clamps high
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("counts = %v, want %v", counts, want)
			break
		}
	}
	if len(edges) != 4 || edges[0] != 0 || edges[3] != 3 {
		t.Errorf("edges = %v", edges)
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{3, 1, 2})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 1.0 / 3}, {2.5, 2.0 / 3}, {3, 1}, {99, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("ECDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 6}); got != 3 {
		t.Errorf("Mean = %v, want 3", got)
	}
}
