package stats

import (
	"math"
	"testing"
)

// lcg is a tiny deterministic generator for test data.
type lcg uint64

func (l *lcg) next() float64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return float64(uint64(*l)>>11) / float64(1<<53)
}

func TestLogisticRegressionRecoversCoefficients(t *testing.T) {
	truth := []float64{0.8, -2.0} // slope, intercept
	var x [][]float64
	var y []bool
	g := lcg(7)
	for i := 0; i < 20_000; i++ {
		xi := g.next() * 10
		eta := truth[0]*xi + truth[1]
		p := 1 / (1 + math.Exp(-eta))
		x = append(x, []float64{xi, 1})
		y = append(y, g.next() < p)
	}
	beta, err := LogisticRegression(x, y, 200, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if math.Abs(beta[i]-truth[i]) > 0.1 {
			t.Errorf("beta[%d] = %v, want %v", i, beta[i], truth[i])
		}
	}
}

func TestLogisticRegressionBalancedIntercept(t *testing.T) {
	// Pure intercept model with 30% positives: beta = logit(0.3).
	var x [][]float64
	var y []bool
	for i := 0; i < 1000; i++ {
		x = append(x, []float64{1})
		y = append(y, i%10 < 3)
	}
	beta, err := LogisticRegression(x, y, 200, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(0.3 / 0.7)
	if math.Abs(beta[0]-want) > 1e-6 {
		t.Errorf("intercept %v, want %v", beta[0], want)
	}
}

func TestLogisticRegressionValidation(t *testing.T) {
	if _, err := LogisticRegression(nil, nil, 10, 1e-8); err == nil {
		t.Error("want error for empty sample")
	}
	if _, err := LogisticRegression([][]float64{{1, 2}, {1}}, []bool{true, false}, 10, 1e-8); err == nil {
		t.Error("want error for ragged matrix")
	}
	if _, err := LogisticRegression([][]float64{{1}}, []bool{true, false}, 10, 1e-8); err == nil {
		t.Error("want error for length mismatch")
	}
}
