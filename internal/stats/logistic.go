package stats

import (
	"errors"
	"math"
)

// LogisticRegression fits a binary logistic model
//
//	P(y = 1 | x) = 1 / (1 + exp(−βᵀx))
//
// by iteratively reweighted least squares (Newton–Raphson), the estimator
// Faridani et al. use to calibrate the conditional logit from marketplace
// accept/reject observations. Each row of x is one observation (include a
// constant-1 column for an intercept); y holds the binary outcomes.
//
// It returns ErrSingular when the Newton system degenerates (e.g. perfectly
// separable data driving weights to zero) and an error when the iteration
// fails to converge.
func LogisticRegression(x [][]float64, y []bool, maxIter int, tol float64) ([]float64, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, errors.New("stats: mismatched or empty sample")
	}
	p := len(x[0])
	for _, row := range x {
		if len(row) != p {
			return nil, errors.New("stats: ragged design matrix")
		}
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	if tol <= 0 {
		tol = 1e-10
	}
	beta := make([]float64, p)
	for iter := 0; iter < maxIter; iter++ {
		// Gradient g = Xᵀ(y − μ); Hessian H = XᵀWX with W = μ(1−μ).
		grad := make([]float64, p)
		hess := make([][]float64, p)
		for i := range hess {
			hess[i] = make([]float64, p)
		}
		for r, row := range x {
			eta := 0.0
			for j, v := range row {
				eta += beta[j] * v
			}
			mu := 1 / (1 + math.Exp(-eta))
			yy := 0.0
			if y[r] {
				yy = 1
			}
			wgt := mu * (1 - mu)
			for i := 0; i < p; i++ {
				grad[i] += row[i] * (yy - mu)
				for j := 0; j < p; j++ {
					hess[i][j] += wgt * row[i] * row[j]
				}
			}
		}
		// Ridge jitter keeps near-separable problems solvable.
		for i := 0; i < p; i++ {
			hess[i][i] += 1e-9
		}
		step, err := SolveLinear(hess, grad)
		if err != nil {
			return nil, err
		}
		maxStep := 0.0
		for i := range beta {
			beta[i] += step[i]
			if s := math.Abs(step[i]); s > maxStep {
				maxStep = s
			}
		}
		if maxStep < tol {
			return beta, nil
		}
		if maxStep > 1e6 {
			return nil, errors.New("stats: logistic regression diverged (separable data?)")
		}
	}
	return beta, nil
}
