package choice

import (
	"errors"
	"math"

	"crowdpricing/internal/stats"
)

// FitBinary calibrates the Equation-3 acceptance curve from raw
// accept/reject observations — the data a requester actually has after
// posting tasks at assorted prices: for observation i, a worker saw the
// task at rewards[i] cents and accepted (true) or passed (false).
//
// Under Equation (3), P(accept | c) = 1/(1 + exp(−(c/S − B − ln M))), a
// logistic in c, so logistic regression on [c, 1] identifies 1/S and the
// combined offset B + ln M. As with Fit, only the sum B + ln M is
// identified; FitBinary reports the curve with B = 0 and M = exp(offset),
// which reproduces the acceptance probabilities exactly.
func FitBinary(rewards []int, accepted []bool) (Logistic, error) {
	if len(rewards) != len(accepted) || len(rewards) < 10 {
		return Logistic{}, errors.New("choice: need at least 10 matching observations")
	}
	x := make([][]float64, len(rewards))
	for i, c := range rewards {
		x[i] = []float64{float64(c), 1}
	}
	beta, err := stats.LogisticRegression(x, accepted, 200, 1e-10)
	if err != nil {
		return Logistic{}, err
	}
	if beta[0] <= 0 {
		return Logistic{}, errors.New("choice: fitted acceptance not increasing in reward")
	}
	s := 1 / beta[0]
	offset := -beta[1] // = B + ln M
	return Logistic{S: s, B: 0, M: math.Exp(offset)}, nil
}
