package choice

import (
	"math"
	"testing"

	"crowdpricing/internal/dist"
)

// TestFitBinaryRecoversAcceptanceCurve: simulate accept/reject decisions
// from the true curve at assorted prices and verify the fitted curve
// reproduces the acceptance probabilities. The market constant M alone is
// not identified (only B + ln M is), so the check is on p(c), not on the
// raw parameters.
func TestFitBinaryRecoversAcceptanceCurve(t *testing.T) {
	truth := Paper13
	r := dist.NewRNG(31)
	var rewards []int
	var accepted []bool
	// Balanced accept/reject data needs prices near the curve's active
	// region: Paper13 has tiny p at market prices, so use an upweighted
	// observation range (a requester would run probe tasks at high prices
	// too).
	for i := 0; i < 400_000; i++ {
		c := 60 + r.Intn(80) // 60..139 cents: p from ~0.3 to ~0.99
		rewards = append(rewards, c)
		accepted = append(accepted, r.Bernoulli(truth.Accept(c)))
	}
	fit, err := FitBinary(rewards, accepted)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.S-truth.S) > 0.1*truth.S {
		t.Errorf("fitted S = %v, want ≈%v", fit.S, truth.S)
	}
	for c := 60; c <= 139; c += 10 {
		got, want := fit.Accept(c), truth.Accept(c)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("p(%d): fitted %v, truth %v", c, got, want)
		}
	}
}

func TestFitBinaryValidation(t *testing.T) {
	if _, err := FitBinary([]int{1, 2}, []bool{true, false}); err == nil {
		t.Error("want error for tiny sample")
	}
	// Decreasing acceptance (accept cheap, reject expensive) must be
	// rejected.
	var rewards []int
	var accepted []bool
	for i := 0; i < 200; i++ {
		c := i % 40
		rewards = append(rewards, c)
		accepted = append(accepted, c < 20)
	}
	if _, err := FitBinary(rewards, accepted); err == nil {
		t.Error("want error for decreasing acceptance")
	}
}
