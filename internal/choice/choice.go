// Package choice implements the Discrete Choice (conditional logit) model of
// Section 2.2: worker utilities with Gumbel noise, multinomial logit choice
// probabilities, the parametric task acceptance probability function
//
//	p(c) = exp(c/s − b) / (exp(c/s − b) + M)        (Equation 3)
//
// mapping a task reward c (in cents) to the probability that an arriving
// worker picks the requester's task, plus routines to calibrate (s, b, M)
// from observed (c, p) pairs and the utility-based simulation of
// Section 5.1.1 used to validate the logit form (Figure 5).
package choice

import (
	"errors"
	"fmt"
	"math"

	"crowdpricing/internal/dist"
	"crowdpricing/internal/stats"
)

// AcceptanceFn maps a task reward in cents to a task acceptance probability
// in [0, 1]. Implementations must be non-decreasing in the reward; the
// pricing algorithms depend on that monotonicity.
type AcceptanceFn interface {
	Accept(cents int) float64
}

// Logistic is the parametric acceptance function of Equation (3):
// p(c) = exp(c/S − B) / (exp(c/S − B) + M).
type Logistic struct {
	// S is the reward scale in cents (how many cents buy one unit of
	// utility).
	S float64
	// B is the task-intrinsic utility offset; more attractive tasks have
	// smaller (more negative) B.
	B float64
	// M is the competing-market mass, the sum of exponentiated utilities of
	// every other task in the marketplace.
	M float64
}

// Paper13 is the calibrated acceptance function of Equation (13), derived in
// Section 5.1.2 for a Data Collection task with a 2-minute completion time
// on Mechanical Turk: p(c) = exp(c/15 + 0.39) / (exp(c/15 + 0.39) + 2000).
var Paper13 = Logistic{S: 15, B: -0.39, M: 2000}

// Accept implements AcceptanceFn.
func (l Logistic) Accept(cents int) float64 {
	e := math.Exp(float64(cents)/l.S - l.B)
	return e / (e + l.M)
}

// AcceptFloat evaluates the acceptance curve at a real-valued reward; the
// convex-hull machinery of Section 4.3 needs the continuous curve.
func (l Logistic) AcceptFloat(c float64) float64 {
	e := math.Exp(c/l.S - l.B)
	return e / (e + l.M)
}

// InverseAccept returns the smallest integer reward c with p(c) >= target,
// or ok=false if no reward up to maxCents reaches the target.
func (l Logistic) InverseAccept(target float64, maxCents int) (c int, ok bool) {
	for c := 0; c <= maxCents; c++ {
		if l.Accept(c) >= target {
			return c, true
		}
	}
	return 0, false
}

// Validate returns an error if the parameters do not describe a proper
// monotone acceptance curve.
func (l Logistic) Validate() error {
	if l.S <= 0 {
		return fmt.Errorf("choice: scale S = %v must be positive", l.S)
	}
	if l.M <= 0 {
		return fmt.Errorf("choice: market mass M = %v must be positive", l.M)
	}
	return nil
}

// Fit estimates (S, B, M) from observed (reward, acceptance probability)
// pairs. Holding M fixed, Equation (3) linearizes as
//
//	logit(p) = ln(p/(1−p)·1/M·M) ⇒ ln(p/(1−p)) = c/S − B − ln M,
//
// so for a candidate M, least squares on ln(p/(1−p)) + ln M against c gives
// S and B; Fit scans M over a log grid and keeps the best residual. Noise-
// free data is recovered exactly up to the M/B identifiability coupling
// (only B + ln M is identified by the data; Fit resolves the coupling by
// reporting the grid M with the smallest residual, which matches the truth
// when the truth is on the grid).
func Fit(rewards []int, probs []float64) (Logistic, error) {
	if len(rewards) != len(probs) || len(rewards) < 3 {
		return Logistic{}, errors.New("choice: need at least 3 matching observations")
	}
	x := make([]float64, 0, len(rewards))
	logits := make([]float64, 0, len(rewards))
	for i, p := range probs {
		if p <= 0 || p >= 1 {
			continue
		}
		x = append(x, float64(rewards[i]))
		logits = append(logits, math.Log(p/(1-p)))
	}
	if len(x) < 3 {
		return Logistic{}, errors.New("choice: too few interior probabilities")
	}
	// ln(p/(1-p)) = c/S - (B + ln M): a single line identifies S and the sum
	// B + ln M. Scan M over a log grid to split the sum, preferring the M
	// that minimizes curvature residual of the exact (non-linearized) model.
	fit, err := stats.SimpleRegression(x, logits)
	if err != nil {
		return Logistic{}, err
	}
	if fit.Slope <= 0 {
		return Logistic{}, errors.New("choice: acceptance data is not increasing in reward")
	}
	s := 1 / fit.Slope
	sum := -fit.Intercept // = B + ln M
	best := Logistic{}
	bestErr := math.Inf(1)
	for _, m := range logGrid(1, 1e6, 121) {
		cand := Logistic{S: s, B: sum - math.Log(m), M: m}
		sse := 0.0
		for i := range rewards {
			d := cand.Accept(rewards[i]) - probs[i]
			sse += d * d
		}
		if sse < bestErr {
			bestErr = sse
			best = cand
		}
	}
	return best, nil
}

func logGrid(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		f := float64(i) / float64(n-1)
		out[i] = math.Exp(math.Log(lo) + f*(math.Log(hi)-math.Log(lo)))
	}
	return out
}

// Market is a conditional-logit marketplace of competing task utilities:
// the probability a worker picks task i is exp(U_i)/Σ_j exp(U_j).
type Market struct {
	// Utilities holds the deterministic utility of every competing task
	// (excluding the requester's task).
	Utilities []float64
	expSum    float64
}

// NewMarket builds a logit marketplace from competing task utilities.
func NewMarket(utilities []float64) *Market {
	m := &Market{Utilities: append([]float64(nil), utilities...)}
	for _, u := range m.Utilities {
		m.expSum += math.Exp(u)
	}
	return m
}

// ExpSum returns Σ exp(U_i) over the competing tasks — the M constant of
// Equation (3) when the competitors are held fixed.
func (m *Market) ExpSum() float64 { return m.expSum }

// ChooseProb returns the multinomial-logit probability that a worker picks a
// task of utility u over all competitors (Section 2.2):
// p = exp(u)/(exp(u) + Σ exp(U_i)).
func (m *Market) ChooseProb(u float64) float64 {
	e := math.Exp(u)
	return e / (e + m.expSum)
}

// UtilitySimConfig configures the utility-based simulation of Section 5.1.1,
// which validates that maximum-of-random-utility choice produces logit-shaped
// acceptance probabilities (Figure 5).
type UtilitySimConfig struct {
	// NumTasks is the number of competing tasks on the marketplace
	// (100 in the paper).
	NumTasks int
	// Trials is the number of utility draws per reward level.
	Trials int
	// RewardToUtility maps the requester task's reward c to the mean of its
	// utility estimate; the paper uses μ1 = c/50 − 1.
	RewardToUtility func(c int) float64
}

// DefaultUtilitySim reproduces the paper's Section 5.1.1 settings.
func DefaultUtilitySim() UtilitySimConfig {
	return UtilitySimConfig{
		NumTasks: 100,
		Trials:   20_000,
		RewardToUtility: func(c int) float64 {
			return float64(c)/50 - 1
		},
	}
}

// SimulateAcceptance runs the utility-based simulation: competing task i has
// utility mean μ_i ~ N(0,1) and utility noise scale σ_i ~ U[0,1], drawn once;
// the requester's task has mean RewardToUtility(c) and its own σ1 ~ U[0,1].
// For each reward in rewards, it samples all utilities Trials times and
// counts how often the requester's task wins, returning the empirical
// acceptance probability per reward.
func SimulateAcceptance(cfg UtilitySimConfig, rewards []int, r *dist.RNG) []float64 {
	if cfg.NumTasks < 1 || cfg.Trials < 1 {
		panic("choice: invalid utility simulation config")
	}
	// Competing task parameters are sampled once and shared across rewards,
	// matching the paper's setup.
	mus := make([]float64, cfg.NumTasks-1)
	sigmas := make([]float64, cfg.NumTasks-1)
	for i := range mus {
		mus[i] = r.NormFloat64()
		sigmas[i] = r.Float64()
	}
	sigma1 := r.Float64()

	out := make([]float64, len(rewards))
	for ri, c := range rewards {
		mu1 := cfg.RewardToUtility(c)
		wins := 0
		for t := 0; t < cfg.Trials; t++ {
			u1 := mu1 + sigma1*r.NormFloat64()
			won := true
			for i := range mus {
				if mus[i]+sigmas[i]*r.NormFloat64() >= u1 {
					won = false
					break
				}
			}
			if won {
				wins++
			}
		}
		out[ri] = float64(wins) / float64(cfg.Trials)
	}
	return out
}

// FitBeta fits the single-coefficient logit regression of Figure 5: given
// per-task mean utilities z_i for competitors and the reward→utility map for
// the requester's task, find β minimizing squared error between
// exp(β z1(c)) / (exp(β z1(c)) + Σ exp(β z_i)) and the simulated
// probabilities. A golden-section scan over β is ample for one parameter.
func FitBeta(rewardUtil func(c int) float64, competitors []float64, rewards []int, probs []float64) float64 {
	sse := func(beta float64) float64 {
		var z float64
		for _, u := range competitors {
			z += math.Exp(beta * u)
		}
		total := 0.0
		for i, c := range rewards {
			e := math.Exp(beta * rewardUtil(c))
			d := e/(e+z) - probs[i]
			total += d * d
		}
		return total
	}
	lo, hi := 0.01, 20.0
	for iter := 0; iter < 200; iter++ {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if sse(m1) < sse(m2) {
			hi = m2
		} else {
			lo = m1
		}
	}
	return (lo + hi) / 2
}
