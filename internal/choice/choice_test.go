package choice

import (
	"math"
	"testing"
	"testing/quick"

	"crowdpricing/internal/dist"
)

func TestPaper13KnownValues(t *testing.T) {
	// Equation 13: p(12) ≈ N / ∫λ ≈ the break-even point c0 ≈ 12 of
	// Section 5.2.1. Sanity-check the curve's raw values.
	p12 := Paper13.Accept(12)
	e := math.Exp(12.0/15 + 0.39)
	want := e / (e + 2000)
	if math.Abs(p12-want) > 1e-15 {
		t.Errorf("Accept(12) = %v, want %v", p12, want)
	}
	if p12 < 0.0015 || p12 > 0.0018 {
		t.Errorf("Accept(12) = %v, expected ≈0.00164", p12)
	}
}

func TestLogisticMonotone(t *testing.T) {
	f := func(sRaw, bRaw, mRaw float64, c int) bool {
		l := Logistic{
			S: 1 + math.Mod(math.Abs(sRaw), 50),
			B: math.Mod(bRaw, 5),
			M: 1 + math.Mod(math.Abs(mRaw), 1e5),
		}
		c = c % 200
		if c < 0 {
			c = -c
		}
		p1, p2 := l.Accept(c), l.Accept(c+1)
		return p2 >= p1 && p1 >= 0 && p2 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLogisticBounds(t *testing.T) {
	l := Paper13
	if p := l.Accept(0); p <= 0 || p >= 1 {
		t.Errorf("Accept(0) = %v outside (0,1)", p)
	}
	// Very high rewards saturate toward 1.
	if p := l.AcceptFloat(1e6); p < 0.999 {
		t.Errorf("AcceptFloat(1e6) = %v, want ≈1", p)
	}
}

func TestInverseAccept(t *testing.T) {
	l := Paper13
	c, ok := l.InverseAccept(0.002, 100)
	if !ok {
		t.Fatal("no reward reached target")
	}
	if l.Accept(c) < 0.002 {
		t.Errorf("Accept(%d) = %v < target", c, l.Accept(c))
	}
	if c > 0 && l.Accept(c-1) >= 0.002 {
		t.Errorf("c = %d is not minimal", c)
	}
	if _, ok := l.InverseAccept(0.9999, 10); ok {
		t.Error("expected failure for unreachable target")
	}
}

func TestValidate(t *testing.T) {
	if err := Paper13.Validate(); err != nil {
		t.Errorf("Paper13 invalid: %v", err)
	}
	if err := (Logistic{S: 0, M: 1}).Validate(); err == nil {
		t.Error("S=0 should be invalid")
	}
	if err := (Logistic{S: 1, M: 0}).Validate(); err == nil {
		t.Error("M=0 should be invalid")
	}
}

func TestFitRecoversParameters(t *testing.T) {
	truth := Paper13
	var rewards []int
	var probs []float64
	for c := 0; c <= 60; c += 2 {
		rewards = append(rewards, c)
		probs = append(probs, truth.Accept(c))
	}
	got, err := Fit(rewards, probs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.S-truth.S) > 0.5 {
		t.Errorf("fitted S = %v, want %v", got.S, truth.S)
	}
	// B and M are coupled through B + ln M; check the curve itself.
	for c := 0; c <= 60; c++ {
		if d := math.Abs(got.Accept(c) - truth.Accept(c)); d > 1e-3 {
			t.Errorf("fitted curve off by %v at c=%d", d, c)
		}
	}
}

func TestFitRejectsBadInput(t *testing.T) {
	if _, err := Fit([]int{1, 2}, []float64{0.1, 0.2}); err == nil {
		t.Error("want error for too few points")
	}
	if _, err := Fit([]int{1, 2, 3}, []float64{0.3, 0.2, 0.1}); err == nil {
		t.Error("want error for decreasing acceptance")
	}
	if _, err := Fit([]int{1, 2, 3}, []float64{0, 1, 0}); err == nil {
		t.Error("want error for degenerate probabilities")
	}
}

func TestMarketChooseProb(t *testing.T) {
	m := NewMarket([]float64{0, 0, 0}) // three competitors at utility 0
	// A task at utility 0 among 3 equals competitors wins 1/4 of the time.
	if got := m.ChooseProb(0); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("ChooseProb(0) = %v, want 0.25", got)
	}
	if m.ExpSum() != 3 {
		t.Errorf("ExpSum = %v, want 3", m.ExpSum())
	}
	// Higher utility, higher probability.
	if m.ChooseProb(1) <= m.ChooseProb(0) {
		t.Error("ChooseProb not increasing in utility")
	}
}

// TestMarketMatchesGumbelSimulation cross-checks the closed-form logit
// probability against brute-force Gumbel utility maximization.
func TestMarketMatchesGumbelSimulation(t *testing.T) {
	utilities := []float64{0.5, -0.2, 1.0}
	m := NewMarket(utilities)
	ours := 0.8
	want := m.ChooseProb(ours)
	r := dist.NewRNG(9)
	const trials = 300_000
	wins := 0
	for i := 0; i < trials; i++ {
		u1 := ours + r.Gumbel()
		won := true
		for _, u := range utilities {
			if u+r.Gumbel() >= u1 {
				won = false
				break
			}
		}
		if won {
			wins++
		}
	}
	got := float64(wins) / trials
	if math.Abs(got-want) > 0.005 {
		t.Errorf("simulated %v, logit %v", got, want)
	}
}

// TestSimulateAcceptanceIsLogitShaped reproduces the qualitative Figure 5
// result: utility-maximization acceptance is increasing in reward and well
// fit by a logit curve.
func TestSimulateAcceptanceIsLogitShaped(t *testing.T) {
	cfg := DefaultUtilitySim()
	cfg.Trials = 20_000
	r := dist.NewRNG(10)
	var rewards []int
	for c := 0; c <= 100; c += 10 {
		rewards = append(rewards, c)
	}
	probs := SimulateAcceptance(cfg, rewards, r)
	// Winning against the max of 99 competing tasks is rare even at c=100
	// (μ1 = 1 vs a max of 99 standard-normal-mean utilities), so the check
	// is on the trend, not on absolute levels: the top of the curve must
	// clearly dominate the bottom.
	lowMean := (probs[0] + probs[1] + probs[2]) / 3
	highMean := (probs[len(probs)-1] + probs[len(probs)-2] + probs[len(probs)-3]) / 3
	if highMean <= 2*lowMean {
		t.Errorf("acceptance not clearly increasing: low %v high %v (%v)", lowMean, highMean, probs)
	}
}

func TestFitBetaRecoversScale(t *testing.T) {
	// Build exact logit data with known β, then recover it.
	beta := 2.6
	competitors := []float64{0.3, -0.5, 0.1, 0.8}
	rewardUtil := func(c int) float64 { return float64(c)/50 - 1 }
	var z float64
	for _, u := range competitors {
		z += math.Exp(beta * u)
	}
	var rewards []int
	var probs []float64
	for c := 0; c <= 100; c += 5 {
		e := math.Exp(beta * rewardUtil(c))
		rewards = append(rewards, c)
		probs = append(probs, e/(e+z))
	}
	got := FitBeta(rewardUtil, competitors, rewards, probs)
	if math.Abs(got-beta) > 0.05 {
		t.Errorf("FitBeta = %v, want %v", got, beta)
	}
}
