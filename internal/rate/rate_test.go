package rate

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestConstantIntegral(t *testing.T) {
	c := Constant(100)
	if got := c.Integral(2, 5); got != 300 {
		t.Errorf("Integral(2,5) = %v, want 300", got)
	}
	if got := c.Integral(5, 2); got != -300 {
		t.Errorf("Integral(5,2) = %v, want -300", got)
	}
	if got := c.Rate(123); got != 100 {
		t.Errorf("Rate = %v, want 100", got)
	}
}

func TestPiecewiseRateAndIntegral(t *testing.T) {
	// Three 1-hour buckets at rates 10, 20, 30.
	p := NewPiecewise(1, []float64{10, 20, 30})
	if got := p.Rate(0.5); got != 10 {
		t.Errorf("Rate(0.5) = %v", got)
	}
	if got := p.Rate(1.0); got != 20 {
		t.Errorf("Rate(1.0) = %v", got)
	}
	if got := p.Rate(99); got != 30 { // clamped beyond data
		t.Errorf("Rate(99) = %v", got)
	}
	if got := p.Integral(0, 3); !almost(got, 60, 1e-9) {
		t.Errorf("Integral(0,3) = %v, want 60", got)
	}
	if got := p.Integral(0.5, 1.5); !almost(got, 5+10, 1e-9) {
		t.Errorf("Integral(0.5,1.5) = %v, want 15", got)
	}
	// Beyond the data the last bucket extends.
	if got := p.Integral(2, 4); !almost(got, 60, 1e-9) {
		t.Errorf("Integral(2,4) = %v, want 60", got)
	}
}

func TestPiecewiseIntegralAdditivity(t *testing.T) {
	p := NewPiecewise(1.0/3, []float64{5, 0, 12, 7, 3, 100, 42})
	f := func(aRaw, bRaw, cRaw float64) bool {
		a := math.Mod(math.Abs(aRaw), 3)
		b := math.Mod(math.Abs(bRaw), 3)
		c := math.Mod(math.Abs(cRaw), 3)
		if a > b {
			a, b = b, a
		}
		if b > c {
			b, c = c, b
		}
		if a > b {
			a, b = b, a
		}
		whole := p.Integral(a, c)
		split := p.Integral(a, b) + p.Integral(b, c)
		return almost(whole, split, 1e-9*(1+math.Abs(whole)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLinearRateInterpolation(t *testing.T) {
	l := NewLinear([]float64{0, 2, 4}, []float64{0, 10, 0})
	if got := l.Rate(1); got != 5 {
		t.Errorf("Rate(1) = %v, want 5", got)
	}
	if got := l.Rate(3); got != 5 {
		t.Errorf("Rate(3) = %v, want 5", got)
	}
	if got := l.Rate(-1); got != 0 {
		t.Errorf("Rate(-1) = %v, want 0 (clamped)", got)
	}
	if got := l.Rate(10); got != 0 {
		t.Errorf("Rate(10) = %v, want 0 (clamped)", got)
	}
	// Triangle area = 1/2 * base(4) * height(10) = 20.
	if got := l.Integral(0, 4); !almost(got, 20, 1e-9) {
		t.Errorf("Integral(0,4) = %v, want 20", got)
	}
	// Half triangle.
	if got := l.Integral(0, 2); !almost(got, 10, 1e-9) {
		t.Errorf("Integral(0,2) = %v, want 10", got)
	}
}

func TestLinearIntegralMatchesNumeric(t *testing.T) {
	l := NewLinear([]float64{0, 1, 3, 6}, []float64{4, 8, 2, 10})
	for _, span := range [][2]float64{{0, 6}, {0.5, 2.5}, {-1, 7}, {2, 2}} {
		want := numericIntegral(l, span[0], span[1])
		got := l.Integral(span[0], span[1])
		if !almost(got, want, 1e-3*(1+math.Abs(want))) {
			t.Errorf("Integral(%v,%v) = %v, numeric %v", span[0], span[1], got, want)
		}
	}
}

func TestPeriodicWrapsBase(t *testing.T) {
	base := NewPiecewise(1, []float64{10, 20})
	p := NewPeriodic(base, 2)
	if got := p.Rate(0.5); got != 10 {
		t.Errorf("Rate(0.5) = %v", got)
	}
	if got := p.Rate(2.5); got != 10 {
		t.Errorf("Rate(2.5) = %v, want 10 (wrapped)", got)
	}
	if got := p.Rate(3.5); got != 20 {
		t.Errorf("Rate(3.5) = %v, want 20 (wrapped)", got)
	}
	// One period integrates to 30; ten periods to 300.
	if got := p.Integral(0, 20); !almost(got, 300, 1e-9) {
		t.Errorf("Integral(0,20) = %v, want 300", got)
	}
	// Fragmented span: [1.5, 4.5] = half of bucket2 + full period + half bucket1.
	want := 10 + 30 + 5
	if got := p.Integral(1.5, 4.5); !almost(got, float64(want), 1e-9) {
		t.Errorf("Integral(1.5,4.5) = %v, want %v", got, want)
	}
}

func TestPeriodicIntegralMatchesNumeric(t *testing.T) {
	base := NewLinear([]float64{0, 12, 24}, []float64{100, 300, 100})
	p := NewPeriodic(base, 24)
	for _, span := range [][2]float64{{0, 24}, {6, 54}, {30, 31}, {0, 168}} {
		want := numericIntegral(p, span[0], span[1])
		got := p.Integral(span[0], span[1])
		if !almost(got, want, 1e-2*(1+math.Abs(want))) {
			t.Errorf("Integral(%v,%v) = %v, numeric %v", span[0], span[1], got, want)
		}
	}
}

func TestScaledThinning(t *testing.T) {
	base := Constant(6000)
	thin := Scaled{Base: base, Factor: 0.0016}
	if got := thin.Rate(1); !almost(got, 9.6, 1e-12) {
		t.Errorf("Rate = %v, want 9.6", got)
	}
	if got := thin.Integral(0, 24); !almost(got, 6000*0.0016*24, 1e-9) {
		t.Errorf("Integral = %v", got)
	}
}

func TestIntervalMeansEquation4(t *testing.T) {
	// λ_t = ∫ over the t-th of NT equal intervals (Equation 4).
	p := NewPiecewise(1.0/3, []float64{600, 1200, 1800, 600, 1200, 1800})
	means := IntervalMeans(p, 2, 6)
	want := []float64{200, 400, 600, 200, 400, 600}
	for i := range means {
		if !almost(means[i], want[i], 1e-9) {
			t.Errorf("IntervalMeans[%d] = %v, want %v", i, means[i], want[i])
		}
	}
	// Sum of interval means equals total integral.
	total := 0.0
	for _, m := range means {
		total += m
	}
	if !almost(total, p.Integral(0, 2), 1e-9) {
		t.Errorf("ΣIntervalMeans = %v, Integral = %v", total, p.Integral(0, 2))
	}
}

func TestAverage(t *testing.T) {
	p := NewPiecewise(1, []float64{10, 30})
	if got := Average(p, 0, 2); !almost(got, 20, 1e-9) {
		t.Errorf("Average = %v, want 20", got)
	}
	if got := Average(p, 1, 1); got != 30 {
		t.Errorf("Average over empty span = %v, want Rate(1)=30", got)
	}
}

func TestNewPiecewiseValidation(t *testing.T) {
	assertPanics(t, func() { NewPiecewise(0, []float64{1}) })
	assertPanics(t, func() { NewPiecewise(1, nil) })
	assertPanics(t, func() { NewPiecewise(1, []float64{-1}) })
	assertPanics(t, func() { NewLinear([]float64{0}, []float64{1}) })
	assertPanics(t, func() { NewLinear([]float64{0, 0}, []float64{1, 1}) })
	assertPanics(t, func() { NewPeriodic(Constant(1), 0) })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func numericIntegral(f Fn, s, u float64) float64 {
	const steps = 20_000
	h := (u - s) / steps
	total := 0.0
	for i := 0; i < steps; i++ {
		a := s + float64(i)*h
		total += (f.Rate(a) + f.Rate(a+h)) / 2 * h
	}
	return total
}
