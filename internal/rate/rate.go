// Package rate models the worker arrival-rate function λ(t) of the
// non-homogeneous Poisson process in Section 2.1 of the paper. Rates are
// expressed in workers per hour and time in hours since the start of the
// horizon.
//
// The package provides the parametric families the paper discusses —
// constant rates, piecewise-constant rates (how the experiments bind λ(t) to
// 20-minute mturk-tracker buckets), piecewise-linear rates (Massey et al.'s
// telecom approximation), and periodic wrappers (the weekly repetition
// visible in Figure 1) — together with exact integration Λ(S,T) = ∫λ(t)dt,
// which drives every Poisson count in the system via Equation (1).
package rate

import (
	"fmt"
	"math"
)

// Fn is an arrival-rate function λ(t) with an exact integral. Rates must be
// non-negative everywhere.
type Fn interface {
	// Rate returns λ(t) in workers per hour.
	Rate(t float64) float64
	// Integral returns Λ(s, u) = ∫_s^u λ(t) dt, the expected number of
	// worker arrivals in [s, u]. Implementations must handle s > u by
	// returning the negated integral.
	Integral(s, u float64) float64
}

// Constant is a homogeneous rate λ(t) = C.
type Constant float64

// Rate implements Fn.
func (c Constant) Rate(float64) float64 { return float64(c) }

// Integral implements Fn.
func (c Constant) Integral(s, u float64) float64 { return float64(c) * (u - s) }

// Piecewise is a piecewise-constant rate over equal-width buckets starting
// at time 0: bucket i covers [i·Width, (i+1)·Width). Outside the covered
// range the rate repeats the nearest edge bucket, so short horizons behind
// or beyond the data stay well-defined.
type Piecewise struct {
	// Width is the bucket width in hours (20 minutes = 1/3 in the paper's
	// experiments).
	Width float64
	// Rates holds λ for each bucket, in workers per hour.
	Rates []float64
}

// NewPiecewise builds a piecewise-constant rate. It panics on an empty rate
// slice, a non-positive width, or a negative rate, because those are
// programming errors rather than data conditions.
func NewPiecewise(width float64, rates []float64) *Piecewise {
	if width <= 0 {
		panic("rate: non-positive bucket width")
	}
	if len(rates) == 0 {
		panic("rate: empty rate slice")
	}
	for i, r := range rates {
		if r < 0 || math.IsNaN(r) {
			panic(fmt.Sprintf("rate: invalid rate %v at bucket %d", r, i))
		}
	}
	cp := make([]float64, len(rates))
	copy(cp, rates)
	return &Piecewise{Width: width, Rates: cp}
}

func (p *Piecewise) bucket(t float64) int {
	i := int(math.Floor(t / p.Width))
	if i < 0 {
		return 0
	}
	if i >= len(p.Rates) {
		return len(p.Rates) - 1
	}
	return i
}

// Rate implements Fn.
func (p *Piecewise) Rate(t float64) float64 { return p.Rates[p.bucket(t)] }

// Integral implements Fn. The integral is exact: full buckets contribute
// rate·width and the partial edges contribute proportionally.
func (p *Piecewise) Integral(s, u float64) float64 {
	if s > u {
		return -p.Integral(u, s)
	}
	total := 0.0
	t := s
	for t < u {
		i := p.bucket(t)
		var end float64
		switch {
		case t < 0:
			end = math.Min(u, 0)
		case i == len(p.Rates)-1:
			end = u
		default:
			end = math.Min(u, float64(i+1)*p.Width)
		}
		if end <= t { // guard against FP stalls at bucket edges
			end = math.Nextafter(t, math.Inf(1))
		}
		total += p.Rates[i] * (end - t)
		t = end
	}
	return total
}

// End returns the time at which the covered buckets end.
func (p *Piecewise) End() float64 { return float64(len(p.Rates)) * p.Width }

// Linear is a piecewise-linear rate through the points (Times[i], Values[i]),
// the parametric family Massey et al. use for telecom traffic. Outside the
// knot range the rate is clamped to the nearest endpoint value.
type Linear struct {
	Times  []float64
	Values []float64
}

// NewLinear builds a piecewise-linear rate. Times must be strictly
// increasing and Values non-negative; violations panic.
func NewLinear(times, values []float64) *Linear {
	if len(times) != len(values) || len(times) < 2 {
		panic("rate: Linear needs at least two matching knots")
	}
	for i := range times {
		if i > 0 && times[i] <= times[i-1] {
			panic("rate: Linear knot times must be strictly increasing")
		}
		if values[i] < 0 {
			panic("rate: negative rate value")
		}
	}
	ct := make([]float64, len(times))
	cv := make([]float64, len(values))
	copy(ct, times)
	copy(cv, values)
	return &Linear{Times: ct, Values: cv}
}

// Rate implements Fn.
func (l *Linear) Rate(t float64) float64 {
	n := len(l.Times)
	if t <= l.Times[0] {
		return l.Values[0]
	}
	if t >= l.Times[n-1] {
		return l.Values[n-1]
	}
	// Binary search for the segment containing t.
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if l.Times[mid] <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	frac := (t - l.Times[lo]) / (l.Times[hi] - l.Times[lo])
	return l.Values[lo] + frac*(l.Values[hi]-l.Values[lo])
}

// Integral implements Fn using exact trapezoids per segment.
func (l *Linear) Integral(s, u float64) float64 {
	if s > u {
		return -l.Integral(u, s)
	}
	total := 0.0
	// Clamped flat regions outside the knots.
	n := len(l.Times)
	if s < l.Times[0] {
		end := math.Min(u, l.Times[0])
		total += l.Values[0] * (end - s)
		s = end
	}
	if s >= u {
		return total
	}
	if u > l.Times[n-1] {
		start := math.Max(s, l.Times[n-1])
		total += l.Values[n-1] * (u - start)
		u = l.Times[n-1]
		if s >= u {
			return total
		}
	}
	for i := 0; i+1 < n; i++ {
		a, b := l.Times[i], l.Times[i+1]
		if b <= s || a >= u {
			continue
		}
		lo, hi := math.Max(a, s), math.Min(b, u)
		total += (l.Rate(lo) + l.Rate(hi)) / 2 * (hi - lo)
	}
	return total
}

// Periodic wraps a base rate defined on [0, Period) and repeats it forever,
// modelling the weekly repetition the paper assumes for marketplace traffic.
type Periodic struct {
	Base   Fn
	Period float64
}

// NewPeriodic wraps base with the given period in hours (168 for weekly).
func NewPeriodic(base Fn, period float64) *Periodic {
	if period <= 0 {
		panic("rate: non-positive period")
	}
	return &Periodic{Base: base, Period: period}
}

// Rate implements Fn.
func (p *Periodic) Rate(t float64) float64 {
	return p.Base.Rate(mod(t, p.Period))
}

// Integral implements Fn by splitting into whole periods plus fragments.
func (p *Periodic) Integral(s, u float64) float64 {
	if s > u {
		return -p.Integral(u, s)
	}
	perPeriod := p.Base.Integral(0, p.Period)
	total := 0.0
	// Advance s to a period boundary.
	sm := mod(s, p.Period)
	if sm != 0 {
		head := math.Min(u-s, p.Period-sm)
		total += p.Base.Integral(sm, sm+head)
		s += head
	}
	if s >= u {
		return total
	}
	whole := math.Floor((u - s) / p.Period)
	total += whole * perPeriod
	s += whole * p.Period
	if u > s {
		total += p.Base.Integral(0, u-s)
	}
	return total
}

// Scaled multiplies a base rate by Factor, used to thin a marketplace rate
// by a task acceptance probability (λ'(t) = λ(t)·p in Section 2.1).
type Scaled struct {
	Base   Fn
	Factor float64
}

// Rate implements Fn.
func (s Scaled) Rate(t float64) float64 { return s.Factor * s.Base.Rate(t) }

// Integral implements Fn.
func (s Scaled) Integral(a, b float64) float64 { return s.Factor * s.Base.Integral(a, b) }

// Average returns the mean rate over [s, u], the λ̄ of Section 4.2.2.
func Average(f Fn, s, u float64) float64 {
	if u == s {
		return f.Rate(s)
	}
	return f.Integral(s, u) / (u - s)
}

// IntervalMeans partitions [0, horizon] into n equal intervals and returns
// the expected arrivals λ_t per interval (Equation 4), the quantities the
// deadline DP consumes.
func IntervalMeans(f Fn, horizon float64, n int) []float64 {
	if n <= 0 {
		panic("rate: IntervalMeans needs n > 0")
	}
	out := make([]float64, n)
	w := horizon / float64(n)
	for i := range out {
		out[i] = f.Integral(float64(i)*w, float64(i+1)*w)
	}
	return out
}

func mod(x, m float64) float64 {
	r := math.Mod(x, m)
	if r < 0 {
		r += m
	}
	return r
}
