package market

import (
	"math"

	"crowdpricing/internal/rate"
)

// PaperGroupSizes are the bundle sizes used in the live experiments.
var PaperGroupSizes = []int{10, 20, 30, 40, 50}

// PaperLiveConfig reproduces the Section 5.4 experiment setting: 5000
// entity-resolution tasks, $0.02 per HIT, posted at 8 a.m. with a 14-hour
// deadline, bundle size as the price lever.
//
// The behaviour curves are calibrated so the simulator reproduces the shapes
// of Figures 12 and 15: bundles of 10 and 20 finish before the deadline
// (10 roughly twice as fast as 20 and more than four times faster than
// 30–50 in HITs), bundles 30–50 do not finish, bundle 50's *work*
// completion clearly exceeds 30's and 40's, and the average number of HITs
// per worker falls as the bundle grows (i.e. rises with the unit wage).
func PaperLiveConfig(arrival rate.Fn) Config {
	return Config{
		TotalTasks:     5000,
		BasePriceCents: 2,
		TaskSeconds:    7,
		Horizon:        14,
		Arrival:        arrival,
		AcceptHIT:      PaperAcceptHIT,
		Retention:      PaperRetention,
		AccuracyMean:   0.905,
		AccuracySigma:  0.045,
	}
}

// PaperAcceptHIT maps bundle size to per-arrival HIT acceptance probability.
// It interpolates a smooth logistic in the unit wage through the calibrated
// anchors {10: 0.0060, 20: 0.0033, 30: 0.00116, 40: 0.00093, 50: 0.00088}.
func PaperAcceptHIT(g int) float64 {
	return interpAnchors(g, acceptAnchors)
}

// PaperRetention maps bundle size to the probability of taking another HIT
// after finishing one. Higher unit wages retain workers longer (Figure 15):
// anchors {10: 0.60, 20: 0.44, 30: 0.36, 40: 0.31, 50: 0.26}.
func PaperRetention(g int) float64 {
	return interpAnchors(g, retentionAnchors)
}

var acceptAnchors = map[int]float64{
	10: 0.0060,
	20: 0.0033,
	30: 0.00116,
	40: 0.00093,
	50: 0.00088,
}

var retentionAnchors = map[int]float64{
	10: 0.60,
	20: 0.44,
	30: 0.36,
	40: 0.31,
	50: 0.26,
}

// interpAnchors log-linearly interpolates between decade anchors and clamps
// outside [10, 50].
func interpAnchors(g int, anchors map[int]float64) float64 {
	if g <= 10 {
		return anchors[10]
	}
	if g >= 50 {
		return anchors[50]
	}
	lo := (g / 10) * 10
	hi := lo + 10
	if lo == g {
		return anchors[lo]
	}
	frac := float64(g-lo) / float64(hi-lo)
	return math.Exp(math.Log(anchors[lo])*(1-frac) + math.Log(anchors[hi])*frac)
}

// PaperArrival is the marketplace arrival rate used by the live-experiment
// reproduction: a weekday daytime profile averaging ≈5200 workers/hour with
// a mild diurnal swing over the 8 a.m.–10 p.m. window.
func PaperArrival() rate.Fn {
	times := []float64{0, 4, 8, 11, 14}
	values := []float64{4200, 6000, 5800, 4800, 3800}
	return rate.NewLinear(times, values)
}
