package market

import (
	"math"
	"testing"

	"crowdpricing/internal/rate"
	"crowdpricing/internal/stats"
)

func liveConfig() Config { return PaperLiveConfig(PaperArrival()) }

func TestConfigValidate(t *testing.T) {
	cfg := liveConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.TotalTasks = 0 },
		func(c *Config) { c.BasePriceCents = 0 },
		func(c *Config) { c.TaskSeconds = 0 },
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.Arrival = nil },
		func(c *Config) { c.AcceptHIT = nil },
		func(c *Config) { c.Retention = nil },
		func(c *Config) { c.AccuracyMean = 0.2 },
		func(c *Config) { c.AccuracySigma = -1 },
	}
	for i, mut := range mutations {
		c := liveConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestRunFixedBasics(t *testing.T) {
	cfg := liveConfig()
	res, err := RunFixed(cfg, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksCompleted > cfg.TotalTasks {
		t.Errorf("completed %d of %d tasks", res.TasksCompleted, cfg.TotalTasks)
	}
	// Cost is base price per HIT.
	if res.CostCents != len(res.HITs)*cfg.BasePriceCents {
		t.Errorf("cost %d, want %d", res.CostCents, len(res.HITs)*cfg.BasePriceCents)
	}
	// HITs are time-ordered and within the horizon.
	prev := 0.0
	for _, h := range res.HITs {
		if h.Time < prev || h.Time > cfg.Horizon {
			t.Fatalf("bad HIT time %v", h.Time)
		}
		prev = h.Time
		if h.Tasks <= 0 || h.Tasks > h.Group {
			t.Fatalf("bad HIT task count %+v", h)
		}
		if h.Correct < 0 || h.Correct > h.Tasks {
			t.Fatalf("bad correct count %+v", h)
		}
	}
	// Task accounting matches.
	sum := 0
	for _, h := range res.HITs {
		sum += h.Tasks
	}
	if sum != res.TasksCompleted {
		t.Errorf("HIT tasks sum %d, TasksCompleted %d", sum, res.TasksCompleted)
	}
}

func TestRunFixedDeterministic(t *testing.T) {
	cfg := liveConfig()
	a, err := RunFixed(cfg, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFixed(cfg, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.HITs) != len(b.HITs) || a.TasksCompleted != b.TasksCompleted {
		t.Error("same seed produced different results")
	}
}

// TestFigure12Shapes checks the calibrated marketplace reproduces the live
// experiment's qualitative results: small bundles finish before the
// deadline, large ones do not, and bundle 50 moves more work than 30/40.
func TestFigure12Shapes(t *testing.T) {
	cfg := liveConfig()
	results := map[int]*Result{}
	for _, g := range PaperGroupSizes {
		res, err := RunFixed(cfg, g, int64(100+g))
		if err != nil {
			t.Fatal(err)
		}
		results[g] = res
	}
	if math.IsInf(results[10].CompletionTime, 1) {
		t.Error("bundle 10 did not finish before the deadline")
	}
	if math.IsInf(results[20].CompletionTime, 1) {
		t.Error("bundle 20 did not finish before the deadline")
	}
	for _, g := range []int{30, 40, 50} {
		if !math.IsInf(results[g].CompletionTime, 1) {
			t.Errorf("bundle %d finished before the deadline", g)
		}
	}
	// At the 6-hour mark bundle 10 leads bundle 20 by ≈2× and 30 by ≥4× in
	// completed HITs (Section 5.4.1's reading of Figure 12(a)).
	h10 := results[10].CompletedHITsBy(6)
	h20 := results[20].CompletedHITsBy(6)
	h30 := results[30].CompletedHITsBy(6)
	if float64(h10) < 1.8*float64(h20) {
		t.Errorf("HITs at 6h: bundle 10 (%d) not ≈2× bundle 20 (%d)", h10, h20)
	}
	if float64(h10) < 4*float64(h30) {
		t.Errorf("HITs at 6h: bundle 10 (%d) not ≥4× bundle 30 (%d)", h10, h30)
	}
	// Work completion: bundle 50 beats 30 and 40 (Figure 12(b)). A single
	// run is too noisy to order the large bundles reliably, so average the
	// completed work over a fixed batch of seeds.
	avgWork := func(g int) float64 {
		const runs = 10
		total := results[g].TasksCompleted // seed 100+g already ran above
		for k := int64(1); k < runs; k++ {
			res, err := RunFixed(cfg, g, int64(100+g)+k*1000)
			if err != nil {
				t.Fatal(err)
			}
			total += res.TasksCompleted
		}
		return float64(total) / runs
	}
	w30 := avgWork(30)
	w40 := avgWork(40)
	w50 := avgWork(50)
	if w50 <= w30 || w50 <= w40 {
		t.Errorf("mean work completed: 50→%v not above 30→%v and 40→%v", w50, w30, w40)
	}
}

// TestFigure15Retention: average HITs per worker decreases with bundle size
// (i.e. increases with unit wage).
func TestFigure15Retention(t *testing.T) {
	cfg := liveConfig()
	prev := math.Inf(1)
	for _, g := range PaperGroupSizes {
		res, err := RunFixed(cfg, g, int64(200+g))
		if err != nil {
			t.Fatal(err)
		}
		hpw := res.HITsPerWorker()
		if hpw > prev+0.25 { // small noise allowance
			t.Errorf("bundle %d: HITs/worker %v rose above %v", g, hpw, prev)
		}
		if hpw < prev {
			prev = hpw
		}
	}
}

// TestAccuracyPriceInsensitive: mean per-HIT accuracy is ≈0.9 at every
// bundle size and differences stay small (Tables 3/4).
func TestAccuracyPriceInsensitive(t *testing.T) {
	cfg := liveConfig()
	var means []float64
	for _, g := range PaperGroupSizes {
		res, err := RunFixed(cfg, g, int64(300+g))
		if err != nil {
			t.Fatal(err)
		}
		m := stats.Mean(res.Accuracies())
		if m < 0.85 || m > 0.95 {
			t.Errorf("bundle %d: mean accuracy %v outside [0.85, 0.95]", g, m)
		}
		means = append(means, m)
	}
	s := stats.Summarize(means)
	if s.Max-s.Min > 0.03 {
		t.Errorf("accuracy spread %v across bundles too large", s.Max-s.Min)
	}
}

func TestRunDynamicControllerSavesMoney(t *testing.T) {
	cfg := liveConfig()
	fixedResults := map[int]*Result{}
	for _, g := range PaperGroupSizes {
		res, err := RunFixed(cfg, g, int64(400+g))
		if err != nil {
			t.Fatal(err)
		}
		fixedResults[g] = res
	}
	rates, err := EstimateGroupRates(cfg, fixedResults)
	if err != nil {
		t.Fatal(err)
	}
	choose, err := PlanGroupSizes(cfg, rates, 10, 500)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := RunDynamic(cfg, choose, 999)
	if err != nil {
		t.Fatal(err)
	}
	if dyn.TasksCompleted < cfg.TotalTasks {
		t.Fatalf("dynamic run left %d tasks", cfg.TotalTasks-dyn.TasksCompleted)
	}
	fixed20 := fixedResults[20]
	if dyn.CostCents >= fixed20.CostCents {
		t.Errorf("dynamic cost %d¢ not below fixed-20 cost %d¢", dyn.CostCents, fixed20.CostCents)
	}
}

func TestEstimateGroupRates(t *testing.T) {
	cfg := liveConfig()
	res, err := RunFixed(cfg, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	rates, err := EstimateGroupRates(cfg, map[int]*Result{10: res})
	if err != nil {
		t.Fatal(err)
	}
	dur := res.CompletionTime
	if math.IsInf(dur, 1) {
		dur = cfg.Horizon
	}
	want := float64(len(res.HITs)) / cfg.Arrival.Integral(0, dur)
	if math.Abs(rates.HITPerArrival[10]-want) > 1e-9 {
		t.Errorf("rate = %v, want %v", rates.HITPerArrival[10], want)
	}
	if _, err := EstimateGroupRates(cfg, nil); err == nil {
		t.Error("want error for empty results")
	}
}

func TestPlanGroupSizesValidation(t *testing.T) {
	cfg := liveConfig()
	if _, err := PlanGroupSizes(cfg, GroupRates{}, 10, 50); err == nil {
		t.Error("want error for empty rates")
	}
	rates := GroupRates{Sizes: []int{10}, HITPerArrival: map[int]float64{10: 0.01}, basePr: 2}
	if _, err := PlanGroupSizes(cfg, rates, 0, 50); err == nil {
		t.Error("want error for zero unit size")
	}
}

func TestCompletedByQueries(t *testing.T) {
	res := &Result{HITs: []HITRecord{
		{Time: 1, Tasks: 10}, {Time: 2, Tasks: 20}, {Time: 3, Tasks: 30},
	}}
	if got := res.CompletedTasksBy(2); got != 30 {
		t.Errorf("CompletedTasksBy(2) = %d, want 30", got)
	}
	if got := res.CompletedHITsBy(2.5); got != 2 {
		t.Errorf("CompletedHITsBy(2.5) = %d, want 2", got)
	}
	if got := res.CompletedHITsBy(0); got != 0 {
		t.Errorf("CompletedHITsBy(0) = %d, want 0", got)
	}
}

func TestInterpAnchors(t *testing.T) {
	// Anchor values returned exactly; interior values between neighbours.
	if got := PaperAcceptHIT(10); got != acceptAnchors[10] {
		t.Errorf("PaperAcceptHIT(10) = %v", got)
	}
	mid := PaperAcceptHIT(15)
	if mid >= acceptAnchors[10] || mid <= acceptAnchors[20] {
		t.Errorf("PaperAcceptHIT(15) = %v not between anchors", mid)
	}
	if got := PaperAcceptHIT(5); got != acceptAnchors[10] {
		t.Errorf("clamp low failed: %v", got)
	}
	if got := PaperAcceptHIT(99); got != acceptAnchors[50] {
		t.Errorf("clamp high failed: %v", got)
	}
}

func TestPaperArrivalLevel(t *testing.T) {
	fn := PaperArrival()
	avg := rate.Average(fn, 0, 14)
	if avg < 4500 || avg > 6000 {
		t.Errorf("average arrival rate %v outside the calibrated band", avg)
	}
}

func TestHITRecordAccuracy(t *testing.T) {
	h := HITRecord{Tasks: 10, Correct: 9}
	if h.Accuracy() != 0.9 {
		t.Errorf("accuracy = %v", h.Accuracy())
	}
	if (HITRecord{}).Accuracy() != 0 {
		t.Error("empty HIT accuracy should be 0")
	}
}
