package market

import "testing"

func BenchmarkRunFixedBundle20(b *testing.B) {
	cfg := PaperLiveConfig(PaperArrival())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunFixed(cfg, 20, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanGroupSizes(b *testing.B) {
	cfg := PaperLiveConfig(PaperArrival())
	results := map[int]*Result{}
	for _, g := range PaperGroupSizes {
		res, err := RunFixed(cfg, g, int64(g))
		if err != nil {
			b.Fatal(err)
		}
		results[g] = res
	}
	rates, err := EstimateGroupRates(cfg, results)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PlanGroupSizes(cfg, rates, 10, 500); err != nil {
			b.Fatal(err)
		}
	}
}
