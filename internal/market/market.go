// Package market is an event-driven simulator of a crowdsourcing
// marketplace in the style of Mechanical Turk, built to reproduce the
// paper's live experiments (Section 5.4) without the live platform.
//
// Workers arrive following a non-homogeneous Poisson process. Each arriving
// worker decides whether to take one of the requester's HITs (a bundle of
// unit tasks; the live experiments express price through the bundle size at
// a fixed $0.02 HIT reward). A worker who accepts completes HITs back to
// back, staying for another HIT with a wage-dependent retention probability
// (the Section 5.4.3 observation behind Figure 15), and answers each unit
// task correctly according to a latent per-worker accuracy that is
// independent of price (Figures 13/14, Tables 3/4).
package market

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"crowdpricing/internal/dist"
	"crowdpricing/internal/rate"
)

// Config describes one live-experiment marketplace.
type Config struct {
	// TotalTasks is the number of unit tasks to complete (5000 photo pairs
	// in the paper).
	TotalTasks int
	// BasePriceCents is the fixed reward per HIT ($0.02 → 2).
	BasePriceCents int
	// TaskSeconds is the average working time per unit task.
	TaskSeconds float64
	// Horizon is the experiment length in hours (14 in the paper: 8am–10pm).
	Horizon float64
	// Arrival is the marketplace worker arrival rate (workers/hour).
	Arrival rate.Fn
	// AcceptHIT returns the probability that an arriving worker takes one
	// of the requester's HITs when the bundle size is g tasks.
	AcceptHIT func(g int) float64
	// Retention returns the probability that a worker who just finished a
	// HIT of size g immediately takes another one.
	Retention func(g int) float64
	// AccuracyMean and AccuracySigma parameterize the latent per-worker
	// answer accuracy (clamped to [0.5, 1]).
	AccuracyMean, AccuracySigma float64
}

// Validate reports whether the configuration is usable.
func (c *Config) Validate() error {
	switch {
	case c.TotalTasks <= 0:
		return errors.New("market: TotalTasks must be positive")
	case c.BasePriceCents <= 0:
		return errors.New("market: BasePriceCents must be positive")
	case c.TaskSeconds <= 0:
		return errors.New("market: TaskSeconds must be positive")
	case c.Horizon <= 0:
		return errors.New("market: Horizon must be positive")
	case c.Arrival == nil:
		return errors.New("market: nil arrival rate")
	case c.AcceptHIT == nil || c.Retention == nil:
		return errors.New("market: nil behaviour functions")
	case c.AccuracyMean < 0.5 || c.AccuracyMean > 1:
		return fmt.Errorf("market: accuracy mean %v outside [0.5, 1]", c.AccuracyMean)
	case c.AccuracySigma < 0:
		return errors.New("market: negative accuracy sigma")
	}
	return nil
}

// HITRecord is one completed HIT.
type HITRecord struct {
	// Time is the completion time in hours from the experiment start.
	Time float64
	// Group is the bundle size of this HIT.
	Group int
	// Tasks is the number of unit tasks in the HIT (== Group except for a
	// final partial bundle).
	Tasks int
	// Correct is the number of correctly answered unit tasks.
	Correct int
	// Worker identifies the worker who completed the HIT.
	Worker int
}

// Accuracy returns the fraction of correct answers in the HIT.
func (h HITRecord) Accuracy() float64 {
	if h.Tasks == 0 {
		return 0
	}
	return float64(h.Correct) / float64(h.Tasks)
}

// Result is the outcome of one simulated experiment run.
type Result struct {
	// HITs lists every completed HIT in completion-time order.
	HITs []HITRecord
	// TasksCompleted is the total number of unit tasks completed within
	// the horizon.
	TasksCompleted int
	// CostCents is the total payment (BasePriceCents per completed HIT).
	CostCents int
	// Workers is the number of distinct workers who took at least one HIT.
	Workers int
	// CompletionTime is the time the final task finished, or +Inf if the
	// batch did not finish within the horizon.
	CompletionTime float64
}

// CompletedTasksBy returns the number of unit tasks finished by time t.
func (r *Result) CompletedTasksBy(t float64) int {
	total := 0
	for _, h := range r.HITs {
		if h.Time <= t {
			total += h.Tasks
		}
	}
	return total
}

// CompletedHITsBy returns the number of HITs finished by time t.
func (r *Result) CompletedHITsBy(t float64) int {
	n := sort.Search(len(r.HITs), func(i int) bool { return r.HITs[i].Time > t })
	return n
}

// HITsPerWorker returns the average number of HITs completed per worker.
func (r *Result) HITsPerWorker() float64 {
	if r.Workers == 0 {
		return 0
	}
	return float64(len(r.HITs)) / float64(r.Workers)
}

// Accuracies returns the per-HIT accuracy sample.
func (r *Result) Accuracies() []float64 {
	out := make([]float64, len(r.HITs))
	for i, h := range r.HITs {
		out[i] = h.Accuracy()
	}
	return out
}

// GroupChooser picks the bundle size for newly offered HITs. It is invoked
// at every decision epoch (hourly in the live experiments) with the tasks
// still unassigned and the time; it must return one of the configured
// bundle sizes.
type GroupChooser func(remainingTasks int, hour int) int

// RunFixed simulates the Section 5.4.1 fixed-pricing experiment: the bundle
// size stays g for the whole horizon.
func RunFixed(cfg Config, g int, seed int64) (*Result, error) {
	return run(cfg, func(int, int) int { return g }, seed)
}

// RunDynamic simulates the Section 5.4.2 dynamic-pricing experiment: choose
// re-picks the bundle size at every hour boundary.
func RunDynamic(cfg Config, choose GroupChooser, seed int64) (*Result, error) {
	if choose == nil {
		return nil, errors.New("market: nil group chooser")
	}
	return run(cfg, choose, seed)
}

// run advances the marketplace in one-minute steps: arrivals are Poisson
// within each step, each arrival flips acceptance for the current bundle
// size, and accepted workers chain HITs until retention fails, inventory
// runs out, or the horizon would be exceeded.
func run(cfg Config, choose GroupChooser, seed int64) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := dist.NewRNG(seed)
	res := &Result{CompletionTime: math.Inf(1)}
	remaining := cfg.TotalTasks
	const perHour = 60 // one-minute steps
	const step = 1.0 / perHour
	g := choose(remaining, 0)
	if g <= 0 {
		return nil, fmt.Errorf("market: chooser returned bundle size %d", g)
	}
	workerID := 0
	steps := int(math.Ceil(cfg.Horizon * perHour))
	for k := 0; k < steps && remaining > 0; k++ {
		t := float64(k) * step
		if k > 0 && k%perHour == 0 {
			g = choose(remaining, k/perHour)
			if g <= 0 {
				return nil, fmt.Errorf("market: chooser returned bundle size %d", g)
			}
		}
		mean := cfg.Arrival.Integral(t, t+step)
		arrivals := dist.Poisson{Lambda: mean}.Sample(r)
		for a := 0; a < arrivals && remaining > 0; a++ {
			if !r.Bernoulli(cfg.AcceptHIT(g)) {
				continue
			}
			workerID++
			res.Workers++
			acc := clampF(r.Normal(cfg.AccuracyMean, cfg.AccuracySigma), 0.5, 1)
			// Arrival lands uniformly within the minute.
			at := t + r.Float64()*step
			now := at
			for remaining > 0 {
				take := g
				if take > remaining {
					take = remaining
				}
				finish := now + float64(take)*cfg.TaskSeconds/3600
				if finish > cfg.Horizon {
					break // the HIT would not finish before the deadline
				}
				correct := dist.Binomial{N: take, P: acc}.Sample(r)
				res.HITs = append(res.HITs, HITRecord{
					Time: finish, Group: g, Tasks: take, Correct: correct, Worker: workerID,
				})
				remaining -= take
				res.TasksCompleted += take
				res.CostCents += cfg.BasePriceCents
				now = finish
				if remaining == 0 {
					res.CompletionTime = finish
					break
				}
				if !r.Bernoulli(cfg.Retention(g)) {
					break
				}
			}
		}
	}
	sort.Slice(res.HITs, func(i, j int) bool { return res.HITs[i].Time < res.HITs[j].Time })
	return res, nil
}

func clampF(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
