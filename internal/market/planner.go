package market

import (
	"errors"
	"fmt"
	"math"

	"crowdpricing/internal/dist"
	"crowdpricing/internal/mdp"
)

// GroupRates holds the estimated marketplace response per candidate bundle
// size, the quantities Section 5.4.2 estimates from the fixed-pricing
// trials: HITPerArrival[g] is the expected number of HIT completions per
// marketplace worker arrival while the bundle size is g. Keeping the
// estimate per-arrival lets the planner modulate it with the time-varying
// arrival profile, matching the paper's use of "normalized worker arrival
// data" from the fixed trials.
type GroupRates struct {
	Sizes         []int
	HITPerArrival map[int]float64
	basePr        int
}

// EstimateGroupRates derives per-arrival HIT completion rates from
// fixed-trial results, dividing completed HITs by the expected worker
// arrivals over the effective runtime (completion time if the batch
// finished, otherwise the horizon).
func EstimateGroupRates(cfg Config, results map[int]*Result) (GroupRates, error) {
	gr := GroupRates{HITPerArrival: map[int]float64{}, basePr: cfg.BasePriceCents}
	for g, res := range results {
		dur := cfg.Horizon
		if !math.IsInf(res.CompletionTime, 1) && res.CompletionTime > 0 {
			dur = res.CompletionTime
		}
		arrivals := cfg.Arrival.Integral(0, dur)
		if arrivals <= 0 {
			return GroupRates{}, fmt.Errorf("market: no expected arrivals for group %d", g)
		}
		gr.Sizes = append(gr.Sizes, g)
		gr.HITPerArrival[g] = float64(len(res.HITs)) / arrivals
	}
	if len(gr.Sizes) == 0 {
		return GroupRates{}, errors.New("market: no fixed trials supplied")
	}
	sortInts(gr.Sizes)
	return gr, nil
}

// PlanGroupSizes solves a finite-horizon MDP over hourly decision epochs:
// the state is the number of remaining task units, the action is the bundle
// size, completions within an hour are Poisson with mean HITRate[g]·g/unit,
// the stage cost is the HIT payments, and unfinished units at the deadline
// pay penaltyCents each. unitTasks coarsens the state space (10 task units
// keep 5000 tasks tractable); penaltyCents is per unit.
//
// The returned GroupChooser indexes the solved policy by (remaining tasks,
// hour) and is plugged straight into RunDynamic — this is the paper's
// Section 5.4.2 controller with the deadline MDP of Section 3 transplanted
// onto bundle-size actions.
func PlanGroupSizes(cfg Config, rates GroupRates, unitTasks int, penaltyCents float64) (GroupChooser, error) {
	if unitTasks <= 0 {
		return nil, errors.New("market: unitTasks must be positive")
	}
	if len(rates.Sizes) == 0 {
		return nil, errors.New("market: no candidate bundle sizes")
	}
	units := (cfg.TotalTasks + unitTasks - 1) / unitTasks
	hours := int(math.Ceil(cfg.Horizon))
	actions := rates.Sizes
	// Expected worker arrivals per decision hour, so late quiet hours are
	// planned with their true lower throughput.
	hourArrivals := make([]float64, hours)
	for h := range hourArrivals {
		hourArrivals[h] = cfg.Arrival.Integral(float64(h), math.Min(float64(h+1), cfg.Horizon))
	}
	m := mdp.FiniteHorizon{
		Horizon: hours,
		States:  units + 1,
		Actions: len(actions),
		Transitions: func(t, s, a int) []mdp.Transition {
			if s == 0 {
				return []mdp.Transition{{Next: 0, Prob: 1}}
			}
			g := actions[a]
			// Units completed this hour: Poisson with the unit-rate mean.
			meanUnits := rates.HITPerArrival[g] * hourArrivals[t] * float64(g) / float64(unitTasks)
			costPerUnit := float64(rates.basePr) * float64(unitTasks) / float64(g)
			pois := dist.Poisson{Lambda: meanUnits}
			var trs []mdp.Transition
			cum := 0.0
			for k := 0; k < s; k++ {
				p := pois.PMF(k)
				if p < 1e-12 && k > int(meanUnits)+5 {
					break
				}
				cum += p
				trs = append(trs, mdp.Transition{
					Next: s - k, Prob: p, Cost: float64(k) * costPerUnit,
				})
			}
			if tail := 1 - cum; tail > 0 {
				trs = append(trs, mdp.Transition{
					Next: 0, Prob: tail, Cost: float64(s) * costPerUnit,
				})
			}
			return trs
		},
		TerminalCost: func(s int) float64 { return float64(s) * penaltyCents },
	}
	pol, err := mdp.SolveFiniteHorizon(m)
	if err != nil {
		return nil, err
	}
	return func(remainingTasks, hour int) int {
		if hour < 0 {
			hour = 0
		}
		if hour >= hours {
			hour = hours - 1
		}
		u := (remainingTasks + unitTasks - 1) / unitTasks
		if u > units {
			u = units
		}
		if u <= 0 {
			return actions[0]
		}
		return actions[pol.Action[hour][u]]
	}, nil
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
