// Package crowdpricing prices batches of human computation tasks on a
// crowdsourcing marketplace, reproducing "Finish Them!: Pricing Algorithms
// for Human Computation" (Gao & Parameswaran, VLDB 2014).
//
// Two optimization problems are solved:
//
//   - Fixed deadline (Section 3 of the paper): given N tasks and a deadline,
//     dynamically vary the per-task reward over discretized time intervals to
//     minimize the expected total payment while finishing on time — a
//     finite-horizon Markov Decision Process solved by backward induction
//     with Poisson truncation and monotone price search.
//   - Fixed budget (Section 4): given N tasks and a budget, choose the
//     up-front static prices minimizing the expected completion time — at
//     most two prices, found on the lower convex hull of (c, 1/p(c)).
//
// This root package re-exports the library's primary types so applications
// outside the repository see one import path; the implementation lives in
// the internal packages (core, choice, rate, nhpp, market, …), and the
// examples/ directory shows complete workflows.
//
// # Pricing as a service
//
// The solvers also run as a long-lived daemon (cmd/priced) exposing an
// HTTP/JSON API: every problem kind in the engine registry (deadline,
// budget, tradeoff, and the general-k multi-type extension) is served from
// one generic POST /v1/solve/{kind} handler behind an LRU cache of solved
// policies keyed by a canonical content hash of the problem. Cold solves
// run on an admission-controlled worker pool (bounded queue, HTTP 429
// shedding under overload), warm solves return in microseconds, and
// concurrent identical requests are deduplicated onto a single solve.
// NewPricingServer embeds the service in another process; NewPricingClient
// talks to a running daemon — its generic Solve(ctx, kind, req) covers any
// registered kind, with typed wrappers for the classics; the request and
// response types (DeadlineRequest, BudgetRequest, TradeoffRequest,
// MultiRequest, BatchRequest, SolveResponse, …) are re-exported here.
//
// # Online campaigns
//
// Beyond one-shot solves, the daemon runs stateful campaigns — the paper's
// intended online loop. POST /v1/campaigns registers a batch under a solved
// policy (deadline, tradeoff, or multi), the server tracks the remaining
// tasks and elapsed intervals as the requester reports observations, and
// GET /v1/campaigns/{id}/price answers "what should I pay right now" in
// O(1) from the policy table. Deadline campaigns optionally re-plan
// adaptively (§5.2.5): a bank of policies pre-solved over a grid of
// arrival-rate scale factors, switched by a trailing-window rate estimate
// on every observation. Idle campaigns expire on a TTL, and the table
// snapshots to JSON so daemon restarts resume quoting identical prices.
// See PricingClient.CreateCampaign / ObserveCampaign / CampaignPrice /
// FinishCampaign.
//
// # Building and testing
//
// The module is plain Go with no dependencies outside the standard library:
//
//	go build ./...   # compile every package, command, and example
//	go test ./...    # unit, property, and statistical tests
//	go vet ./...     # static checks (also run by CI)
//
// The deadline solvers are benchmarked in internal/core; compare the serial
// backward induction against the worker-pool fan-out with:
//
//	go test ./internal/core/ -run XXX -bench 'PaperScale|Large'
//
// All simulation randomness flows through internal/dist's seeded generator,
// so every test and figure is reproducible run-to-run; the MDP solvers are
// parallel by default (see DeadlineProblem.Workers) and produce policies
// bit-identical to the serial path at any worker count.
package crowdpricing

import (
	"crowdpricing/internal/choice"
	"crowdpricing/internal/core"
	"crowdpricing/internal/rate"
	"crowdpricing/internal/server"
)

// DeadlineProblem is a fixed-deadline pricing instance (Section 3).
type DeadlineProblem = core.DeadlineProblem

// DeadlinePolicy is a solved dynamic price schedule.
type DeadlinePolicy = core.DeadlinePolicy

// BudgetProblem is a fixed-budget pricing instance (Section 4).
type BudgetProblem = core.BudgetProblem

// StaticStrategy is an up-front price allocation (at most two prices).
type StaticStrategy = core.StaticStrategy

// TradeoffProblem optimizes a weighted cost/latency objective (Section 6).
type TradeoffProblem = core.TradeoffProblem

// MultiProblem is the general-k multiple-task-type extension (Section 6):
// k types share one worker stream, each with its own acceptance curve and
// price, solved jointly over the product state space.
type MultiProblem = core.MultiProblem

// MultiPolicy is a solved general-k joint pricing policy.
type MultiPolicy = core.MultiPolicy

// AcceptanceFn maps a reward in cents to a task acceptance probability.
type AcceptanceFn = choice.AcceptanceFn

// Logistic is the parametric acceptance curve of Equation (3).
type Logistic = choice.Logistic

// RateFn is a worker arrival-rate function λ(t) with exact integration.
type RateFn = rate.Fn

// Paper13 is the acceptance curve calibrated in Section 5.1.2 of the paper
// (Equation 13): a Data Collection task with a 2-minute completion time.
var Paper13 = choice.Paper13

// ConstantRate returns the homogeneous arrival rate λ(t) = perHour.
func ConstantRate(perHour float64) RateFn { return rate.Constant(perHour) }

// IntervalMeans splits [0, horizon] hours into n intervals and returns the
// expected worker arrivals per interval, the λ_t inputs of DeadlineProblem.
func IntervalMeans(fn RateFn, horizon float64, n int) []float64 {
	return rate.IntervalMeans(fn, horizon, n)
}

// PricingServer is the embeddable pricing service behind cmd/priced: an
// HTTP/JSON solver frontend with a fingerprint-keyed LRU policy cache and
// singleflight deduplication of concurrent identical requests.
type PricingServer = server.Server

// PricingServerOptions configures a PricingServer; the zero value is
// production-ready.
type PricingServerOptions = server.Options

// PricingClient is a typed HTTP client for a running pricing daemon.
type PricingClient = server.Client

// DeadlineRequest asks the service for a fixed-deadline dynamic pricing
// policy (Section 3).
type DeadlineRequest = server.DeadlineRequest

// BudgetRequest asks the service for a fixed-budget static allocation
// (Section 4).
type BudgetRequest = server.BudgetRequest

// TradeoffRequest asks the service for a cost/latency trade-off policy
// (Section 6).
type TradeoffRequest = server.TradeoffRequest

// MultiRequest asks the service for a general-k multi-type joint pricing
// policy; solve it through PricingClient.Solve(ctx, "multi", req) and
// decode the result with SolveResponse.Decode into a MultiSchedule.
type MultiRequest = server.MultiRequest

// MultiSchedule is the solved general-k policy on the wire.
type MultiSchedule = server.MultiSchedule

// BatchRequest solves many problems in one round trip.
type BatchRequest = server.BatchRequest

// BatchItem is one problem of any registered kind inside a batch.
type BatchItem = server.BatchItem

// BatchResponse mirrors BatchRequest positionally.
type BatchResponse = server.BatchResponse

// SolveResponse is the envelope every solve endpoint returns; decode the
// artifact with DecodePolicy, DecodeBudget, or DecodeTradeoff.
type SolveResponse = server.SolveResponse

// BudgetStrategyResult is the solved budget allocation on the wire.
type BudgetStrategyResult = server.BudgetStrategy

// TradeoffSchedule is the solved trade-off policy on the wire.
type TradeoffSchedule = server.TradeoffSchedule

// LogisticParams is the wire form of the Equation-3 acceptance curve.
type LogisticParams = server.LogisticParams

// PricingAPIError is a non-2xx reply from the pricing daemon; inspect
// StatusCode (or IsBackpressure for 429 queue shedding) to pick a retry
// strategy, or let PricingClient.SolveWithRetry handle backpressure
// automatically.
type PricingAPIError = server.APIError

// RetryOptions tunes PricingClient.SolveWithRetry's jittered,
// Retry-After-honoring backoff; the zero value is production-ready.
type RetryOptions = server.RetryOptions

// CampaignAdaptiveOptions enables the paper's §5.2.5 adaptive re-planning
// on a deadline campaign (pre-solved factor bank, trailing-window rate
// estimate); zero fields pick the defaults.
type CampaignAdaptiveOptions = server.CampaignAdaptiveOptions

// CampaignState is a live campaign's wire-facing view, returned by
// PricingClient.CreateCampaign, ObserveCampaign, and CampaignState.
type CampaignState = server.CampaignState

// CampaignQuote is one O(1) price lookup from a live campaign
// (PricingClient.CampaignPrice).
type CampaignQuote = server.CampaignQuote

// CampaignSummary is the terminal accounting returned by
// PricingClient.FinishCampaign.
type CampaignSummary = server.CampaignSummary

// CreateCampaignRequest is the wire body of POST /v1/campaigns: a problem
// kind with a sequential price table plus its solve request verbatim.
type CreateCampaignRequest = server.CreateCampaignRequest

// NewPricingServer builds the pricing service; expose it with Handler or
// mount it inside an existing mux.
func NewPricingServer(opts PricingServerOptions) *PricingServer { return server.New(opts) }

// NewPricingClient returns a client for the daemon at baseURL, e.g.
// "http://localhost:8080".
func NewPricingClient(baseURL string) *PricingClient { return server.NewClient(baseURL) }
