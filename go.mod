module crowdpricing

go 1.24
