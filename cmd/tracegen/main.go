// Command tracegen generates the synthetic mturk-tracker arrival trace and
// writes it as CSV (default) or JSON, for plotting or for feeding other
// tools. The same generator backs every experiment in this repository.
//
// Flags:
//
//	-format string
//	      csv or json (default "csv")
//	-o string
//	      output path (default stdout)
//	-seed int
//	      random seed (default from trace.DefaultConfig)
//	-base float
//	      base arrival rate per hour (default from trace.DefaultConfig)
//	-holiday float
//	      fractional rate drop on day 1 (default from trace.DefaultConfig)
//	-summary
//	      print per-day totals instead of the raw trace
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"crowdpricing/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	flag.Usage = func() {
		o := flag.CommandLine.Output()
		fmt.Fprintf(o, "usage: tracegen [flags]\n\n")
		fmt.Fprintf(o, "Generate the synthetic mturk-tracker arrival trace as CSV or JSON.\n\nflags:\n")
		flag.PrintDefaults()
	}
	format := flag.String("format", "csv", "csv or json")
	out := flag.String("o", "", "output path (default stdout)")
	seed := flag.Int64("seed", trace.DefaultConfig().Seed, "random seed")
	base := flag.Float64("base", trace.DefaultConfig().BaseRate, "base arrival rate per hour")
	holiday := flag.Float64("holiday", trace.DefaultConfig().HolidayDip, "fractional rate drop on day 1")
	summary := flag.Bool("summary", false, "print per-day totals instead of the raw trace")
	flag.Parse()

	cfg := trace.DefaultConfig()
	cfg.Seed = *seed
	cfg.BaseRate = *base
	cfg.HolidayDip = *holiday
	tr := trace.Generate(cfg)

	if *summary {
		for d := 0; d < trace.Days; d++ {
			total := 0
			for _, c := range tr.Day(d) {
				total += c
			}
			fmt.Printf("day %2d: %8d arrivals\n", d+1, total)
		}
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	switch *format {
	case "csv":
		if err := tr.WriteCSV(w); err != nil {
			log.Fatal(err)
		}
	case "json":
		enc := json.NewEncoder(w)
		if err := enc.Encode(tr); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown format %q", *format)
	}
}
