// Command experiments regenerates every table and figure of the paper's
// evaluation section. With no arguments it runs everything; pass experiment
// ids (table1, table2, fig1, fig5, fig6, fig7a, fig7b, fig8, fig8d, fig9,
// fig10, fig10adaptive, fig11, fig12, fig1314, fig15, quality) to run a
// subset.
//
// Flags:
//
//	-seed int
//	      base random seed (default 1)
//	-trials int
//	      Monte Carlo trials for the sensitivity studies (default 200)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"crowdpricing/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	flag.Usage = func() {
		o := flag.CommandLine.Output()
		fmt.Fprintf(o, "usage: experiments [flags] [experiment-id ...]\n\n")
		fmt.Fprintf(o, "Regenerate the paper's tables and figures (all of them by default).\n\nflags:\n")
		flag.PrintDefaults()
	}
	seed := flag.Int64("seed", 1, "base random seed")
	trials := flag.Int("trials", 200, "Monte Carlo trials for the sensitivity studies")
	flag.Parse()

	ids := flag.Args()
	if len(ids) == 0 {
		ids = []string{"table1", "table2", "fig1", "fig5", "fig6", "fig7a", "fig7b",
			"fig8", "fig8d", "fig9", "fig10", "fig10adaptive", "fig11", "fig12",
			"fig1314", "fig15", "quality"}
	}
	var w *exp.Workload
	workload := func() *exp.Workload {
		if w == nil {
			w = exp.DefaultWorkload()
		}
		return w
	}
	out := os.Stdout
	for _, id := range ids {
		fmt.Fprintf(out, "\n==== %s ====\n", id)
		switch id {
		case "table1":
			exp.PrintTable1(out, exp.Table1())
		case "table2":
			exp.PrintTable2(out, exp.Table2(*seed))
		case "fig1":
			exp.PrintFigure1(out, exp.Figure1())
		case "fig5":
			exp.PrintFigure5(out, exp.Figure5(*seed))
		case "fig6":
			exp.PrintFigure6(out, exp.Figure6(*seed))
		case "fig7a":
			res, err := exp.Figure7a(workload())
			check(err)
			exp.PrintFigure7a(out, res)
		case "fig7b":
			cells, err := exp.Figure7b(workload())
			check(err)
			exp.PrintReductionCells(out, "Figure 7(b): cost reduction across N and T", cells)
		case "fig8":
			s, b, m, err := exp.Figure8abc(workload())
			check(err)
			exp.PrintReductionCells(out, "Figure 8(a): cost reduction vs s", s)
			exp.PrintReductionCells(out, "Figure 8(b): cost reduction vs b", b)
			exp.PrintReductionCells(out, "Figure 8(c): cost reduction vs M", m)
		case "fig8d":
			rows, err := exp.Figure8d(workload())
			check(err)
			exp.PrintFigure8d(out, rows)
		case "fig9":
			rows, err := exp.Figure9(workload(), *trials, *seed)
			check(err)
			exp.PrintFigure9(out, rows)
		case "fig10":
			rows, err := exp.Figure10(workload(), *trials, *seed)
			check(err)
			exp.PrintFigure10(out, rows)
		case "fig10adaptive":
			rows, err := exp.Figure10Adaptive(workload(), *trials, *seed)
			check(err)
			exp.PrintFigure10Adaptive(out, rows)
		case "fig11":
			res, err := exp.Figure11(workload(), *trials, *seed)
			check(err)
			exp.PrintFigure11(out, res)
		case "fig12":
			res, err := exp.Figure12(*seed)
			check(err)
			exp.PrintFigure12(out, res)
		case "fig1314":
			res, err := exp.Figure1314(*seed)
			check(err)
			exp.PrintFigure1314(out, res)
		case "fig15":
			rows, err := exp.Figure15(*seed)
			check(err)
			exp.PrintFigure15(out, rows)
		case "quality":
			rows, err := exp.QualityExtension(workload())
			check(err)
			exp.PrintQualityExtension(out, rows)
		default:
			log.Fatalf("unknown experiment %q", id)
		}
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
