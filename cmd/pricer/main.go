// Command pricer computes pricing strategies for a batch of crowdsourcing
// tasks against the synthetic marketplace workload.
//
// Deadline mode (default) prints the dynamic price schedule:
//
//	pricer -mode deadline -n 200 -hours 24 -confidence 0.999
//
// Budget mode prints the optimal static two-price allocation:
//
//	pricer -mode budget -n 200 -budget 2500
//
// Flags:
//
//	-mode string
//	      deadline or budget (default "deadline")
//	-n int
//	      number of tasks (default 200)
//	-hours float
//	      deadline horizon in hours, deadline mode (default 24)
//	-interval int
//	      decision interval in minutes, deadline mode (default 20)
//	-confidence float
//	      completion probability target, deadline mode (default 0.999)
//	-budget int
//	      total budget in cents, budget mode (default 2500)
//	-export string
//	      write the solved deadline policy as JSON to this path
//	-load string
//	      load a previously exported deadline policy instead of solving
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"crowdpricing/internal/core"
	"crowdpricing/internal/exp"
	"crowdpricing/internal/nhpp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pricer: ")
	flag.Usage = func() {
		o := flag.CommandLine.Output()
		fmt.Fprintf(o, "usage: pricer [flags]\n\n")
		fmt.Fprintf(o, "Compute deadline or budget pricing strategies for a task batch.\n\nflags:\n")
		flag.PrintDefaults()
	}
	mode := flag.String("mode", "deadline", "deadline or budget")
	n := flag.Int("n", 200, "number of tasks")
	hours := flag.Float64("hours", 24, "deadline horizon in hours (deadline mode)")
	interval := flag.Int("interval", 20, "decision interval in minutes (deadline mode)")
	confidence := flag.Float64("confidence", 0.999, "completion probability target (deadline mode)")
	budget := flag.Int("budget", 2500, "total budget in cents (budget mode)")
	export := flag.String("export", "", "write the solved deadline policy as JSON to this path")
	load := flag.String("load", "", "load a previously exported deadline policy instead of solving")
	flag.Parse()

	if *load != "" {
		loadAndPrint(*load)
		return
	}
	w := exp.DefaultWorkload()
	switch *mode {
	case "deadline":
		runDeadline(w, *n, *hours, *interval, *confidence, *export)
	case "budget":
		runBudget(w, *n, *budget)
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}

// loadAndPrint restores an exported policy and reprints its summary, the
// round-trip a production scheduler would do at startup.
func loadAndPrint(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	var pol core.DeadlinePolicy
	if err := json.Unmarshal(data, &pol); err != nil {
		log.Fatal(err)
	}
	out := pol.Evaluate()
	p := pol.Problem
	fmt.Printf("loaded policy: N=%d, T=%.1fh, %d intervals\n", p.N, p.Horizon, p.Intervals)
	fmt.Printf("completion probability: %.4f   expected cost: %.1fc   avg reward: %.2fc\n",
		out.CompletionProb, out.ExpectedCost, out.AvgReward)
	fmt.Printf("price now with full backlog: %dc\n", pol.PriceAt(p.N, 0))
}

func runDeadline(w *exp.Workload, n int, hours float64, interval int, confidence float64, export string) {
	p := w.DeadlineProblem(n, hours, interval)
	cal, err := p.CalibratePenaltyForConfidence(confidence, 1e6, 18)
	if err != nil {
		log.Fatal(err)
	}
	if export != "" {
		data, err := json.Marshal(cal.Policy)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(export, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("policy exported to %s\n", export)
	}
	fixed, fixedErr := p.FixedPriceForConfidence(confidence)
	out := cal.Outcome
	fmt.Printf("deadline plan: N=%d, T=%.1fh, %d intervals of %dmin\n", n, hours, p.Intervals, interval)
	fmt.Printf("completion probability: %.4f   expected cost: %.1fc   avg reward: %.2fc\n",
		out.CompletionProb, out.ExpectedCost, out.AvgReward)
	if fixedErr == nil {
		fmt.Printf("fixed-price baseline: %dc/task (expected cost %.1fc, %.0f%% more)\n",
			fixed.Price, fixed.ExpectedCost, (fixed.ExpectedCost-out.ExpectedCost)/out.ExpectedCost*100)
	}
	fmt.Println("\nprice schedule (rows: remaining tasks; cols: elapsed intervals):")
	fmt.Fprint(os.Stdout, "  n\\t ")
	step := p.Intervals / 8
	if step == 0 {
		step = 1
	}
	for t := 0; t < p.Intervals; t += step {
		fmt.Printf("%6d", t)
	}
	fmt.Println()
	nStep := n / 10
	if nStep == 0 {
		nStep = 1
	}
	for remaining := n; remaining > 0; remaining -= nStep {
		fmt.Printf("%5d ", remaining)
		for t := 0; t < p.Intervals; t += step {
			fmt.Printf("%6d", cal.Policy.PriceAt(remaining, t))
		}
		fmt.Println()
	}
}

func runBudget(w *exp.Workload, n, budget int) {
	bp := &core.BudgetProblem{
		N: n, Budget: budget, Accept: w.Accept, MinPrice: 1, MaxPrice: exp.DefaultMaxPrice,
	}
	s, err := bp.SolveHull()
	if err != nil {
		log.Fatal(err)
	}
	lambdaBar := nhpp.AverageRate(w.Arrival, exp.DefaultHorizonHours)
	fmt.Printf("budget plan: N=%d, B=%dc\n", n, budget)
	for price, count := range s.Counts {
		fmt.Printf("  %d tasks at %dc\n", count, price)
	}
	fmt.Printf("committed spend: %dc of %dc\n", s.TotalCost(), budget)
	fmt.Printf("E[worker arrivals]: %.0f   E[completion time]: %.1fh (at %.0f workers/h)\n",
		s.ExpectedWorkerArrivals(w.Accept), s.ExpectedLatency(w.Accept, lambdaBar), lambdaBar)
}
