// Command loadbench is the open-loop load generator and continuous
// benchmark for the pricing daemon. It replays an NHPP-scheduled,
// fixed-seed mix of problems — any kinds the engine registry serves:
// deadline, budget, tradeoff, multi, and whatever is registered next —
// against either an in-process server (hermetic, the CI mode) or a running
// daemon over HTTP, measures coordinated-omission-safe latency, and writes
// a machine-readable JSON report next to a human summary. Backpressure
// (HTTP 429 from the daemon's admission queue) is reported in its own
// `rejected` bucket, separate from errors.
//
// Two scenarios are supported. The default (-scenario solve) fires
// stateless solve requests. -scenario campaign replays the stateful
// lifecycle instead: every scheduled arrival starts a campaign session —
// create, then -campaign-steps observe+quote pairs from a seed-determined
// observation script, then finish — so the run exercises the campaign
// table, the O(1) quote path, and (with -campaign-adaptive) the §5.2.5
// re-planning controller; latency is measured per session.
//
// Examples:
//
//	loadbench -duration 10s -seed 1 -out BENCH_loadbench.json
//	loadbench -url http://localhost:8080 -rate 200 -size paper -cardinality 64
//	loadbench -mix "deadline=5,budget=3,tradeoff=2,multi=1" -duration 10s
//	loadbench -scenario campaign -campaign-steps 6 -rate 10 -duration 10s
//	loadbench -duration 10s -baseline BENCH_old.json -threshold 0.10
//
// Exit codes: 0 success; 1 usage or run failure (an interrupted run that
// measured anything still prints and writes its partial report); 2 a
// metric regressed past -threshold against -baseline; 3 the -max-p99 /
// -max-error-rate sanity ceiling was exceeded (the CI smoke gate).
//
// Flags:
//
//	-duration duration    measurement window (default 10s)
//	-warmup duration      cache warm-up excluded from stats (default 2s)
//	-rate float           mean arrival rate, requests/second (default 50)
//	-seed int             RNG seed; equal seeds replay identical schedules (default 1)
//	-mix string           kind weights over registered kinds, e.g. "deadline=5,budget=3,multi=1"
//	-cardinality int      distinct problems per kind — the cache hit-rate dial (default 16)
//	-size string          problem scale: small, medium, or paper (default "small")
//	-shape string         arrival profile: constant or diurnal (default "constant")
//	-scenario string      workload: solve or campaign (default "solve")
//	-campaign-steps int   campaign scenario: observe/quote pairs per session (default 8)
//	-campaign-adaptive    campaign scenario: run sessions in adaptive re-planning mode
//	-url string           target daemon base URL; empty runs in-process
//	-campaign-wal-dir string  in-process mode: attach a campaign event log at
//	                      this directory — the durability leg, for measuring
//	                      WAL overhead against a log-less baseline run
//	-cache int            in-process mode: policy cache capacity (default 1024)
//	-workers int          in-process mode: goroutines inside each cold deadline solve (default 0 = all CPUs)
//	-solve-concurrency int  in-process mode: engine solve worker pool (default 0 = all CPUs)
//	-queue int            in-process mode: admission queue depth; overflow sheds 429 (default 4096)
//	-concurrency int      cap on in-flight requests (default 4096)
//	-out string           write the JSON report here (default "BENCH_loadbench.json"; "" skips)
//	-baseline string      compare against a previous JSON report
//	-threshold float      relative regression threshold for -baseline (default 0.1)
//	-max-p99 duration     fail (exit 3) if overall p99 exceeds this (0 disables)
//	-max-error-rate float fail (exit 3) if the error rate exceeds this (-1 disables; 429 rejections excluded)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"crowdpricing/internal/bench"
	"crowdpricing/internal/server"
	"crowdpricing/internal/wal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadbench: ")
	flag.Usage = func() {
		o := flag.CommandLine.Output()
		fmt.Fprintf(o, "usage: loadbench [flags]\n\n")
		fmt.Fprintf(o, "Replay an NHPP-scheduled pricing workload and report latency/throughput.\n")
		fmt.Fprintf(o, "Registered problem kinds: %s.\n\nflags:\n", strings.Join(bench.Kinds, ", "))
		flag.PrintDefaults()
	}
	var (
		duration    = flag.Duration("duration", 10*time.Second, "measurement window")
		warmup      = flag.Duration("warmup", 2*time.Second, "cache warm-up excluded from stats")
		rateRPS     = flag.Float64("rate", 50, "mean arrival rate, requests/second")
		seed        = flag.Int64("seed", 1, "RNG seed; equal seeds replay identical schedules")
		mixSpec     = flag.String("mix", "", `kind weights, e.g. "deadline=5,budget=3,multi=1" (default the built-in mix)`)
		cardinality = flag.Int("cardinality", 16, "distinct problems per kind — the cache hit-rate dial")
		size        = flag.String("size", "small", "problem scale: small, medium, or paper")
		shape       = flag.String("shape", "constant", "arrival profile: constant or diurnal")
		scenario    = flag.String("scenario", "solve", "workload: stateless solve requests or stateful campaign sessions (solve | campaign)")
		campSteps   = flag.Int("campaign-steps", 0, "campaign scenario: observe/quote pairs per session (0 = default 8)")
		campAdapt   = flag.Bool("campaign-adaptive", false, "campaign scenario: run every session in adaptive re-planning mode")
		url         = flag.String("url", "", "target daemon base URL; empty runs in-process")
		walDir      = flag.String("campaign-wal-dir", "", `in-process mode: attach a campaign event log at this directory ("" disables)`)
		cacheSize   = flag.Int("cache", server.DefaultCacheSize, "in-process mode: policy cache capacity")
		workers     = flag.Int("workers", 0, "in-process mode: goroutines inside each cold deadline solve (0 = all CPUs)")
		solveConc   = flag.Int("solve-concurrency", 0, "in-process mode: engine solve worker pool (0 = all CPUs)")
		queueDepth  = flag.Int("queue", server.DefaultQueueDepth, "in-process mode: admission queue depth; overflow sheds 429")
		concurrency = flag.Int("concurrency", 4096, "cap on in-flight requests")
		out         = flag.String("out", "BENCH_loadbench.json", `write the JSON report here ("" skips)`)
		baseline    = flag.String("baseline", "", "compare against a previous JSON report")
		threshold   = flag.Float64("threshold", 0.10, "relative regression threshold for -baseline")
		maxP99      = flag.Duration("max-p99", 0, "fail (exit 3) if overall p99 exceeds this (0 disables)")
		maxErrRate  = flag.Float64("max-error-rate", -1, "fail (exit 3) if the error rate exceeds this (-1 disables; 429 rejections excluded)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments %q; loadbench takes flags only", flag.Args())
	}

	mix, err := parseMix(*mixSpec)
	if err != nil {
		log.Fatal(err)
	}
	cfg := bench.Config{
		Seed:             *seed,
		Rate:             *rateRPS,
		Duration:         *duration,
		Warmup:           *warmup,
		Mix:              mix,
		Cardinality:      *cardinality,
		Size:             bench.Size(*size),
		Shape:            bench.Shape(*shape),
		Scenario:         bench.Scenario(*scenario),
		CampaignSteps:    *campSteps,
		CampaignAdaptive: *campAdapt,
	}
	sched, err := bench.GenerateSchedule(cfg)
	if err != nil {
		log.Fatal(err)
	}

	targetName := "in-process"
	var base *bench.ClientTarget
	closeWAL := func() {}
	if *url != "" {
		if *walDir != "" {
			log.Fatal("-campaign-wal-dir applies to the in-process target only; the daemon behind -url owns its own -wal-dir")
		}
		targetName = *url
		base = bench.NewHTTPTarget(*url)
	} else {
		var srv *server.Server
		base, srv = bench.NewInProcessTarget(server.Options{
			CacheSize:     *cacheSize,
			SolverWorkers: *workers,
			Workers:       *solveConc,
			QueueDepth:    *queueDepth,
		})
		if *walDir != "" {
			// The durability leg: same schedule, every campaign mutation
			// group committed to a real on-disk log. Compare against a
			// log-less baseline run to price the WAL's overhead.
			wlog, err := srv.Campaigns().OpenWAL(*walDir, wal.Options{})
			if err != nil {
				log.Fatal(err)
			}
			if _, err := srv.Campaigns().ReplayWAL(context.Background(), wlog); err != nil {
				log.Fatal(err)
			}
			srv.AttachWAL(wlog)
			targetName = "in-process+wal"
			// main exits through os.Exit, which skips defers: close the log
			// explicitly before every exit path below.
			closeWAL = func() {
				if err := wlog.Close(); err != nil {
					log.Printf("wal close: %v", err)
				}
			}
		}
	}
	target := bench.NewTargetFor(sched, base.Client)

	log.Printf("replaying %d requests (%s warmup + %s measured) against %s, schedule %.12s…",
		len(sched.Requests), *warmup, *duration, targetName, sched.Hash)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, runErr := bench.Run(ctx, sched, bench.RunOptions{Target: target, MaxConcurrent: *concurrency})
	if runErr != nil {
		if res == nil || res.Overall.Requests == 0 {
			log.Fatal(runErr)
		}
		// An interrupted run still measured something: report the partial
		// data before exiting non-zero rather than discarding minutes of
		// load.
		log.Printf("%v — reporting the partial run", runErr)
	}

	closeWAL()
	rep := bench.BuildReport(sched.Config, targetName, res, time.Now())
	fmt.Print(rep.Table())
	if *out != "" {
		if err := rep.WriteJSON(*out); err != nil {
			log.Fatal(err)
		}
		log.Printf("report written to %s", *out)
	}

	exit := 0
	if runErr != nil {
		exit = 1
	}
	if *baseline != "" {
		base, err := bench.ReadReport(*baseline)
		if err != nil {
			log.Fatal(err)
		}
		cmp := bench.Compare(base, rep, *threshold)
		fmt.Print(cmp.Format())
		if len(cmp.Regressions()) > 0 {
			exit = 2
		}
	}
	if *maxErrRate >= 0 && rep.ErrorRate > *maxErrRate {
		log.Printf("SANITY FAIL: error rate %.4f exceeds -max-error-rate %.4f", rep.ErrorRate, *maxErrRate)
		exit = 3
	}
	if *maxP99 > 0 {
		p99 := time.Duration(rep.Latency.P99Millis * float64(time.Millisecond))
		if p99 > *maxP99 {
			log.Printf("SANITY FAIL: p99 %v exceeds -max-p99 %v", p99, *maxP99)
			exit = 3
		}
	}
	os.Exit(exit)
}

// parseMix parses "deadline=5,budget=3,multi=1" into a Mix (missing kinds
// weigh 0; empty string selects the built-in default mix). Only the syntax
// is checked here — kind names, weight signs, and the positive-sum rule
// are validated once, by bench.GenerateSchedule, with the same errors.
func parseMix(spec string) (bench.Mix, error) {
	if spec == "" {
		return nil, nil
	}
	m := bench.Mix{}
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf(`bad -mix component %q (want "kind=weight")`, part)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -mix weight %q for %q", val, key)
		}
		m[key] = w
	}
	return m, nil
}
