// Command loadbench is the open-loop load generator and continuous
// benchmark for the pricing daemon. It replays an NHPP-scheduled,
// fixed-seed mix of problems — any kinds the engine registry serves:
// deadline, budget, tradeoff, multi, and whatever is registered next —
// against either an in-process server (hermetic, the CI mode) or a running
// daemon over HTTP, measures coordinated-omission-safe latency, and writes
// a machine-readable JSON report next to a human summary. Backpressure
// (HTTP 429 from the daemon's admission queue) is reported in its own
// `rejected` bucket, separate from errors.
//
// Two scenarios are supported. The default (-scenario solve) fires
// stateless solve requests. -scenario campaign replays the stateful
// lifecycle instead: every scheduled arrival starts a campaign session —
// create, then -campaign-steps observe+quote pairs from a seed-determined
// observation script, then finish — so the run exercises the campaign
// table, the O(1) quote path, and (with -campaign-adaptive) the §5.2.5
// re-planning controller; latency is measured per session.
//
// Three modes. -mode single (the default) generates, replays, and reports
// in one process. When one generator box cannot saturate the daemon, the
// same schedule can be split across machines: -mode coordinator generates
// the schedule, partitions it round-robin by event index into -num-workers
// coordinated-omission-safe slices, and serves assignments over HTTP;
// -mode worker fetches a slice from -coordinator, regenerates the schedule
// from its seeded config, verifies the SHA-256 bit-for-bit, replays its
// slice against the daemon, and posts back serialized histograms. The
// coordinator merges worker histograms slot-for-slot and emits the same
// report schema as a single-process run (plus a per-worker block), so
// -baseline comparison and the CI gates work unchanged. A run that loses a
// worker fails loudly — never a silently partial report.
//
// Examples:
//
//	loadbench -duration 10s -seed 1 -out BENCH_loadbench.json
//	loadbench -url http://localhost:8080 -rate 200 -size paper -cardinality 64
//	loadbench -mix "deadline=5,budget=3,tradeoff=2,multi=1" -duration 10s
//	loadbench -scenario campaign -campaign-steps 6 -rate 10 -duration 10s
//	loadbench -duration 10s -baseline BENCH_old.json -threshold 0.10
//
//	# distributed: one coordinator, two workers, one daemon
//	loadbench -mode coordinator -listen :9070 -num-workers 2 \
//	    -url http://daemon:8080 -rate 2000 -duration 60s -seed 1
//	loadbench -mode worker -coordinator http://coordbox:9070   # ×2
//
// Exit codes: 0 success; 1 usage or run failure (an interrupted run that
// measured anything still prints and writes its partial report); 2 a
// metric regressed past -threshold against -baseline; 3 the -max-p99 /
// -max-error-rate sanity ceiling was exceeded (the CI smoke gate).
//
// Flags:
//
//	-duration duration    measurement window (default 10s)
//	-warmup duration      cache warm-up excluded from stats (default 2s)
//	-rate float           mean arrival rate, requests/second (default 50)
//	-seed int             RNG seed; equal seeds replay identical schedules (default 1)
//	-mix string           kind weights over registered kinds, e.g. "deadline=5,budget=3,multi=1"
//	-cardinality int      distinct problems per kind — the cache hit-rate dial (default 16)
//	-size string          problem scale: small, medium, or paper (default "small")
//	-shape string         arrival profile: constant or diurnal (default "constant")
//	-scenario string      workload: solve or campaign (default "solve")
//	-campaign-steps int   campaign scenario: observe/quote pairs per session (default 8)
//	-campaign-adaptive    campaign scenario: run sessions in adaptive re-planning mode
//	-campaign-dedup float campaign scenario: fraction of sessions redirected onto one
//	                      shared problem per kind — models many tenants pricing the
//	                      same batch, the intern-table sharing regime (default 0)
//	-url string           target daemon base URL; empty runs in-process
//	-campaign-wal-dir string  in-process mode: attach a campaign event log at
//	                      this directory — the durability leg, for measuring
//	                      WAL overhead against a log-less baseline run
//	-cache int            in-process mode: policy cache capacity (default 1024)
//	-workers int          in-process mode: goroutines inside each cold deadline solve (default 0 = all CPUs)
//	-solve-concurrency int  in-process mode: engine solve worker pool (default 0 = all CPUs)
//	-queue int            in-process mode: admission queue depth; overflow sheds 429 (default 4096)
//	-concurrency int      cap on in-flight requests, per generator process (default 4096)
//	-out string           write the JSON report here (default "BENCH_loadbench.json"; "" skips)
//	-baseline string      compare against a previous JSON report
//	-threshold float      relative regression threshold for -baseline (default 0.1)
//	-max-p99 duration     fail (exit 3) if overall p99 exceeds this (0 disables)
//	-max-error-rate float fail (exit 3) if the error rate exceeds this (-1 disables; 429 rejections excluded)
//
//	-mode string          single, coordinator, or worker (default "single")
//	-listen string        coordinator: control-plane listen address (default "127.0.0.1:9070")
//	-num-workers int      coordinator: worker processes the run expects (default 2)
//	-run-deadline duration  coordinator: fail the run after this long (0 = warmup+duration+2m)
//	-coordinator string   worker: coordinator base URL, e.g. http://host:9070
//	-worker-id string     worker: stable identity for registration (default "<hostname>-<pid>")
//
// In -mode worker the workload is defined by the coordinator's assignment,
// so workload/target/report flags are rejected; only -coordinator,
// -worker-id, and -concurrency apply. In -mode coordinator the in-process
// server flags are rejected (-url is required: workers drive that daemon).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"crowdpricing/internal/bench"
	"crowdpricing/internal/server"
	"crowdpricing/internal/wal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadbench: ")
	flag.Usage = func() {
		o := flag.CommandLine.Output()
		fmt.Fprintf(o, "usage: loadbench [flags]\n\n")
		fmt.Fprintf(o, "Replay an NHPP-scheduled pricing workload and report latency/throughput.\n")
		fmt.Fprintf(o, "Registered problem kinds: %s.\n\n", strings.Join(bench.Kinds, ", "))
		fmt.Fprintf(o, "Modes: -mode single (default) runs everything in one process.\n")
		fmt.Fprintf(o, "-mode coordinator partitions the schedule across -num-workers processes\n")
		fmt.Fprintf(o, "and merges their histograms; -mode worker replays one slice, taking its\n")
		fmt.Fprintf(o, "workload from the coordinator's assignment (workload flags rejected).\n\nflags:\n")
		flag.PrintDefaults()
	}
	var (
		duration    = flag.Duration("duration", 10*time.Second, "measurement window")
		warmup      = flag.Duration("warmup", 2*time.Second, "cache warm-up excluded from stats")
		rateRPS     = flag.Float64("rate", 50, "mean arrival rate, requests/second")
		seed        = flag.Int64("seed", 1, "RNG seed; equal seeds replay identical schedules")
		mixSpec     = flag.String("mix", "", `kind weights, e.g. "deadline=5,budget=3,multi=1" (default the built-in mix)`)
		cardinality = flag.Int("cardinality", 16, "distinct problems per kind — the cache hit-rate dial")
		size        = flag.String("size", "small", "problem scale: small, medium, or paper")
		shape       = flag.String("shape", "constant", "arrival profile: constant or diurnal")
		scenario    = flag.String("scenario", "solve", "workload: stateless solve requests or stateful campaign sessions (solve | campaign)")
		campSteps   = flag.Int("campaign-steps", 0, "campaign scenario: observe/quote pairs per session (0 = default 8)")
		campAdapt   = flag.Bool("campaign-adaptive", false, "campaign scenario: run every session in adaptive re-planning mode")
		campDedup   = flag.Float64("campaign-dedup", 0, "campaign scenario: fraction of sessions redirected onto one shared problem per kind")
		url         = flag.String("url", "", "target daemon base URL; empty runs in-process")
		walDir      = flag.String("campaign-wal-dir", "", `in-process mode: attach a campaign event log at this directory ("" disables)`)
		cacheSize   = flag.Int("cache", server.DefaultCacheSize, "in-process mode: policy cache capacity")
		workers     = flag.Int("workers", 0, "in-process mode: goroutines inside each cold deadline solve (0 = all CPUs)")
		solveConc   = flag.Int("solve-concurrency", 0, "in-process mode: engine solve worker pool (0 = all CPUs)")
		queueDepth  = flag.Int("queue", server.DefaultQueueDepth, "in-process mode: admission queue depth; overflow sheds 429")
		concurrency = flag.Int("concurrency", 4096, "cap on in-flight requests, per generator process")
		out         = flag.String("out", "BENCH_loadbench.json", `write the JSON report here ("" skips)`)
		baseline    = flag.String("baseline", "", "compare against a previous JSON report")
		threshold   = flag.Float64("threshold", 0.10, "relative regression threshold for -baseline")
		maxP99      = flag.Duration("max-p99", 0, "fail (exit 3) if overall p99 exceeds this (0 disables)")
		maxErrRate  = flag.Float64("max-error-rate", -1, "fail (exit 3) if the error rate exceeds this (-1 disables; 429 rejections excluded)")

		mode        = flag.String("mode", "single", "single, coordinator, or worker")
		listen      = flag.String("listen", "127.0.0.1:9070", "coordinator mode: control-plane listen address")
		numWorkers  = flag.Int("num-workers", 2, "coordinator mode: worker processes the run expects")
		runDeadline = flag.Duration("run-deadline", 0, "coordinator mode: fail the run after this long (0 = warmup+duration+2m)")
		coordURL    = flag.String("coordinator", "", "worker mode: coordinator base URL, e.g. http://host:9070")
		workerID    = flag.String("worker-id", "", `worker mode: stable identity for registration (default "<hostname>-<pid>")`)
	)
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments %q; loadbench takes flags only", flag.Args())
	}
	setFlags := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	gates := gateFlags{out: *out, baseline: *baseline, threshold: *threshold, maxP99: *maxP99, maxErrRate: *maxErrRate}

	// Worker mode takes its whole workload from the coordinator's
	// assignment; it neither generates a schedule nor writes a report.
	if *mode == "worker" {
		workerAllowed := map[string]bool{"mode": true, "coordinator": true, "worker-id": true, "concurrency": true}
		for name := range setFlags {
			if !workerAllowed[name] {
				log.Fatalf("-%s does not apply in -mode worker: the coordinator's assignment defines the workload, target, and report", name)
			}
		}
		if *coordURL == "" {
			log.Fatal("-mode worker requires -coordinator (the coordinator's base URL)")
		}
		id := *workerID
		if id == "" {
			host, err := os.Hostname()
			if err != nil || host == "" {
				host = "worker"
			}
			id = fmt.Sprintf("%s-%d", host, os.Getpid())
		}
		wopts := bench.WorkerOptions{CoordinatorURL: *coordURL, WorkerID: id, Logf: log.Printf}
		if setFlags["concurrency"] {
			wopts.MaxConcurrent = *concurrency
		}
		if err := bench.RunWorker(ctx, wopts); err != nil {
			log.Fatal(err)
		}
		log.Printf("worker %s finished", id)
		return
	}

	mix, err := parseMix(*mixSpec)
	if err != nil {
		log.Fatal(err)
	}
	cfg := bench.Config{
		Seed:             *seed,
		Rate:             *rateRPS,
		Duration:         *duration,
		Warmup:           *warmup,
		Mix:              mix,
		Cardinality:      *cardinality,
		Size:             bench.Size(*size),
		Shape:            bench.Shape(*shape),
		Scenario:         bench.Scenario(*scenario),
		CampaignSteps:    *campSteps,
		CampaignAdaptive: *campAdapt,
		CampaignDedup:    *campDedup,
	}
	sched, err := bench.GenerateSchedule(cfg)
	if err != nil {
		log.Fatal(err)
	}

	switch *mode {
	case "coordinator":
		for _, name := range []string{"campaign-wal-dir", "cache", "workers", "solve-concurrency", "queue", "coordinator", "worker-id"} {
			if setFlags[name] {
				log.Fatalf("-%s does not apply in -mode coordinator: the coordinator only partitions and merges; workers drive the daemon at -url", name)
			}
		}
		if *url == "" {
			log.Fatal("-mode coordinator requires -url: every worker replays its slice against that daemon")
		}
		os.Exit(runCoordinator(ctx, sched, coordinatorFlags{
			listen:      *listen,
			numWorkers:  *numWorkers,
			targetURL:   *url,
			concurrency: *concurrency,
			deadline:    *runDeadline,
		}, gates))

	case "single":
		for _, name := range []string{"listen", "num-workers", "run-deadline", "coordinator", "worker-id"} {
			if setFlags[name] {
				log.Fatalf("-%s applies to distributed modes only (see -mode)", name)
			}
		}
		os.Exit(runSingle(ctx, sched, singleFlags{
			url:         *url,
			walDir:      *walDir,
			cacheSize:   *cacheSize,
			workers:     *workers,
			solveConc:   *solveConc,
			queueDepth:  *queueDepth,
			concurrency: *concurrency,
		}, gates))

	default:
		log.Fatalf("unknown -mode %q (want single, coordinator, or worker)", *mode)
	}
}

type singleFlags struct {
	url, walDir                                            string
	cacheSize, workers, solveConc, queueDepth, concurrency int
}

type coordinatorFlags struct {
	listen, targetURL       string
	numWorkers, concurrency int
	deadline                time.Duration
}

type gateFlags struct {
	out, baseline string
	threshold     float64
	maxP99        time.Duration
	maxErrRate    float64
}

// runSingle is the classic one-process run: build the target, replay the
// whole schedule, report.
func runSingle(ctx context.Context, sched *bench.Schedule, f singleFlags, gates gateFlags) int {
	targetName := "in-process"
	var base *bench.ClientTarget
	closeWAL := func() {}
	if f.url != "" {
		if f.walDir != "" {
			log.Fatal("-campaign-wal-dir applies to the in-process target only; the daemon behind -url owns its own -wal-dir")
		}
		targetName = f.url
		base = bench.NewHTTPTarget(f.url)
	} else {
		var srv *server.Server
		base, srv = bench.NewInProcessTarget(server.Options{
			CacheSize:     f.cacheSize,
			SolverWorkers: f.workers,
			Workers:       f.solveConc,
			QueueDepth:    f.queueDepth,
		})
		if f.walDir != "" {
			// The durability leg: same schedule, every campaign mutation
			// group committed to a real on-disk log. Compare against a
			// log-less baseline run to price the WAL's overhead.
			wlog, err := srv.Campaigns().OpenWAL(f.walDir, wal.Options{})
			if err != nil {
				log.Fatal(err)
			}
			if _, err := srv.Campaigns().ReplayWAL(context.Background(), wlog); err != nil {
				log.Fatal(err)
			}
			srv.AttachWAL(wlog)
			targetName = "in-process+wal"
			// main exits through os.Exit, which skips defers: close the log
			// explicitly before every exit path below.
			closeWAL = func() {
				if err := wlog.Close(); err != nil {
					log.Printf("wal close: %v", err)
				}
			}
		}
	}
	target := bench.NewTargetFor(sched, base.Client)

	log.Printf("replaying %d requests (%s warmup + %s measured) against %s, schedule %.12s…",
		len(sched.Requests), sched.Config.Warmup, sched.Config.Duration, targetName, sched.Hash)
	res, runErr := bench.Run(ctx, sched, bench.RunOptions{Target: target, MaxConcurrent: f.concurrency})
	if runErr != nil {
		if res == nil || res.Overall.Requests == 0 {
			log.Fatal(runErr)
		}
		// An interrupted run still measured something: report the partial
		// data before exiting non-zero rather than discarding minutes of
		// load.
		log.Printf("%v — reporting the partial run", runErr)
	}

	closeWAL()
	rep := bench.BuildReport(sched.Config, targetName, res, time.Now())
	if f.url != "" {
		// A live daemon can say where the time went server-side: attach its
		// per-stage breakdown from /v1/analytics. Best-effort — the daemon
		// may run with tracing off or predate the analytics plane.
		actx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if an, err := server.NewClient(f.url).Analytics(actx); err != nil {
			log.Printf("server stage breakdown unavailable: %v", err)
		} else {
			rep.ServerStages = an.Stages
		}
		cancel()
	}
	exit := reportAndGate(rep, gates)
	if runErr != nil && exit == 0 {
		exit = 1
	}
	return exit
}

// runCoordinator serves the control plane for a distributed run and merges
// the workers' results into the standard report.
func runCoordinator(ctx context.Context, sched *bench.Schedule, f coordinatorFlags, gates gateFlags) int {
	coord, err := bench.NewCoordinator(bench.CoordinatorOptions{
		Schedule:      sched,
		NumWorkers:    f.numWorkers,
		TargetURL:     f.targetURL,
		MaxConcurrent: f.concurrency,
		Deadline:      f.deadline,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", f.listen)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: coord.Handler()}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Printf("control plane: %v", err)
		}
	}()
	log.Printf("coordinating %d workers on http://%s: run %s, %d requests against %s, schedule %.12s…",
		f.numWorkers, ln.Addr(), coord.RunID(), len(sched.Requests), f.targetURL, sched.Hash)

	_, waitErr := coord.Wait(ctx)
	if waitErr != nil {
		srv.Close()
		log.Fatal(waitErr)
	}
	rep, err := coord.Report(time.Now())
	// Let any straggling /report long-polls drain before tearing down.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = srv.Shutdown(shutdownCtx)
	if err != nil {
		log.Fatal(err)
	}
	return reportAndGate(rep, gates)
}

// reportAndGate prints the report, writes -out, compares -baseline, and
// applies the sanity ceilings — the tail every reporting mode shares.
func reportAndGate(rep *bench.Report, gates gateFlags) int {
	fmt.Print(rep.Table())
	if gates.out != "" {
		if err := rep.WriteJSON(gates.out); err != nil {
			log.Fatal(err)
		}
		log.Printf("report written to %s", gates.out)
	}

	exit := 0
	if gates.baseline != "" {
		base, err := bench.ReadReport(gates.baseline)
		if err != nil {
			log.Fatal(err)
		}
		cmp := bench.Compare(base, rep, gates.threshold)
		fmt.Print(cmp.Format())
		if len(cmp.Regressions()) > 0 {
			exit = 2
		}
	}
	if gates.maxErrRate >= 0 && rep.ErrorRate > gates.maxErrRate {
		log.Printf("SANITY FAIL: error rate %.4f exceeds -max-error-rate %.4f", rep.ErrorRate, gates.maxErrRate)
		exit = 3
	}
	if gates.maxP99 > 0 {
		p99 := time.Duration(rep.Latency.P99Millis * float64(time.Millisecond))
		if p99 > gates.maxP99 {
			log.Printf("SANITY FAIL: p99 %v exceeds -max-p99 %v", p99, gates.maxP99)
			exit = 3
		}
	}
	return exit
}

// parseMix parses "deadline=5,budget=3,multi=1" into a Mix (missing kinds
// weigh 0; empty string selects the built-in default mix). Only the syntax
// is checked here — kind names, weight signs, and the positive-sum rule
// are validated once, by bench.GenerateSchedule, with the same errors.
func parseMix(spec string) (bench.Mix, error) {
	if spec == "" {
		return nil, nil
	}
	m := bench.Mix{}
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf(`bad -mix component %q (want "kind=weight")`, part)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -mix weight %q for %q", val, key)
		}
		m[key] = w
	}
	return m, nil
}
