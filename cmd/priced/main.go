// Command priced runs the pricing daemon: a long-lived HTTP service that
// solves the paper's pricing problems on demand and serves repeated or
// concurrent identical problems from a shared policy cache. Every problem
// kind in the engine registry is served from one generic endpoint family —
// POST /v1/solve/{kind} for deadline, budget, tradeoff, and multi — with
// admission control: cold solves run on a bounded worker pool behind a
// bounded queue, and overload is shed with HTTP 429 instead of unbounded
// goroutines. Warm requests return in microseconds; N simultaneous
// identical requests cost exactly one solve.
//
// Start it, then POST problems as JSON:
//
//	priced -addr :8080 &
//	curl -s localhost:8080/v1/solve/budget -d '{
//	        "n": 100, "budget": 2500,
//	        "accept": {"s": 15, "b": -0.39, "m": 2000},
//	        "min_price": 1, "max_price": 50}'
//
// Endpoints: POST /v1/solve/{kind} (deadline | budget | tradeoff | multi),
// POST /v1/solve/batch; GET /healthz, /metrics (Prometheus text format,
// including queue-depth/in-flight gauges and per-kind solve and rejection
// counters).
//
// Flags:
//
//	-addr string
//	      listen address (default ":8080")
//	-cache int
//	      maximum number of cached policies (default 1024)
//	-workers int
//	      goroutines inside each cold deadline solve; 0 means all CPUs
//	      (default 0)
//	-concurrency int
//	      engine solve worker pool — how many cold solves run at once;
//	      0 means all CPUs (default 0)
//	-queue int
//	      admission queue depth; cold solves beyond it are shed with
//	      HTTP 429 (default 4096)
//	-timeout duration
//	      per-request solve timeout; timed-out solves keep running and warm
//	      the cache for the retry (default 2m0s)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"crowdpricing/internal/kinds"
	"crowdpricing/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("priced: ")
	flag.Usage = func() {
		o := flag.CommandLine.Output()
		fmt.Fprintf(o, "usage: priced [flags]\n\n")
		fmt.Fprintf(o, "Run the crowd-pricing policy daemon (HTTP/JSON, cached solves, admission control).\n")
		fmt.Fprintf(o, "Problem kinds served: %s.\n\nflags:\n", strings.Join(kinds.Default().Kinds(), ", "))
		flag.PrintDefaults()
	}
	addr := flag.String("addr", ":8080", "listen address")
	cacheSize := flag.Int("cache", server.DefaultCacheSize, "maximum number of cached policies")
	workers := flag.Int("workers", 0, "goroutines inside each cold deadline solve; 0 means all CPUs")
	concurrency := flag.Int("concurrency", 0, "engine solve worker pool; 0 means all CPUs")
	queueDepth := flag.Int("queue", server.DefaultQueueDepth, "admission queue depth; overflow is shed with HTTP 429")
	timeout := flag.Duration("timeout", server.DefaultRequestTimeout, "per-request solve timeout")
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments %q; priced takes flags only", flag.Args())
	}

	srv := server.New(server.Options{
		CacheSize:      *cacheSize,
		SolverWorkers:  *workers,
		RequestTimeout: *timeout,
		Workers:        *concurrency,
		QueueDepth:     *queueDepth,
	})
	defer srv.Close()
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		log.Print("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	log.Printf("listening on %s (kinds %s, cache %d policies, queue %d, timeout %s)",
		*addr, strings.Join(kinds.Default().Kinds(), "|"), *cacheSize, *queueDepth, *timeout)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// ListenAndServe returns as soon as the listener closes; wait for
	// Shutdown to finish draining in-flight requests before exiting.
	stop()
	<-shutdownDone
}
