// Command priced runs the pricing daemon: a long-lived HTTP service that
// solves the paper's pricing problems on demand and serves repeated or
// concurrent identical problems from a shared policy cache. Every problem
// kind in the engine registry is served from one generic endpoint family —
// POST /v1/solve/{kind} for deadline, budget, tradeoff, and multi — with
// admission control: cold solves run on a bounded worker pool behind a
// bounded queue, and overload is shed with HTTP 429 instead of unbounded
// goroutines. Warm requests return in microseconds; N simultaneous
// identical requests cost exactly one solve.
//
// Start it, then POST problems as JSON:
//
//	priced -addr :8080 &
//	curl -s localhost:8080/v1/solve/budget -d '{
//	        "n": 100, "budget": 2500,
//	        "accept": {"s": 15, "b": -0.39, "m": 2000},
//	        "min_price": 1, "max_price": 50}'
//
// The daemon also runs stateful campaigns — the paper's online loop:
// POST /v1/campaigns registers a batch under a solved policy (optionally
// with §5.2.5 adaptive re-planning), POST /v1/campaigns/{id}/observe
// records each interval's arrivals and completions, and
// GET /v1/campaigns/{id}/price quotes the policy's current price in O(1).
// Idle campaigns expire after -campaign-ttl; with -campaign-snapshot the
// table is restored from the file at boot and written back on graceful
// shutdown, so restarts resume quoting identical prices.
//
// For crash durability — not just graceful restarts — run with -wal-dir:
// every campaign mutation is appended to a checksummed event log, group
// committed within -wal-sync-interval off the quote hot path, and replayed
// at boot (tolerating torn trailing writes from the crash itself). When
// both flags are set, a non-empty log wins and the snapshot file is
// ignored; a legacy snapshot with an empty log is migrated — restored,
// then compacted into the log — so `-campaign-snapshot` deployments can
// adopt `-wal-dir` with no manual step. Inspect a log with cmd/waldump;
// regenerate rate fits from recorded traffic with cmd/walstats.
//
// Observability: every request is traced through the pipeline stages
// (decode, engine queue, solve, quoter decode, campaign lock, WAL append);
// GET /debug/requests serves the slowest recent traces and GET
// /v1/analytics the live analytics plane — fleet λ̂ re-fit over a trailing
// window, per-cohort campaign/quote summaries, per-stage latency. The same
// numbers are scraped from /metrics as crowdpricing_stage_duration_seconds
// and the crowdpricing_lambda_hat / crowdpricing_cohort_* families.
// -debug-addr starts a second, private listener serving net/http/pprof —
// off by default, and deliberately never on the public address.
//
// Endpoints: POST /v1/solve/{kind} (deadline | budget | tradeoff | multi),
// POST /v1/solve/batch; POST /v1/campaigns, POST
// /v1/campaigns/{id}/observe, GET /v1/campaigns/{id}[/price], DELETE
// /v1/campaigns/{id}; GET /v1/analytics, /debug/requests, /healthz,
// /metrics (Prometheus text format, including queue-depth/in-flight/
// campaign gauges, per-kind solve and rejection counters, per-stage
// duration histograms, and live λ̂/cohort analytics).
//
// Flags:
//
//	-addr string
//	      listen address (default ":8080")
//	-cache int
//	      maximum number of cached policies (default 1024)
//	-workers int
//	      goroutines inside each cold deadline solve; 0 means all CPUs
//	      (default 0)
//	-concurrency int
//	      engine solve worker pool — how many cold solves run at once;
//	      0 means all CPUs (default 0)
//	-queue int
//	      admission queue depth; cold solves beyond it are shed with
//	      HTTP 429 (default 4096)
//	-timeout duration
//	      per-request solve timeout; timed-out solves keep running and warm
//	      the cache for the retry (default 2m0s)
//	-campaign-ttl duration
//	      expire campaigns idle for this long; negative never expires
//	      (default 30m0s)
//	-quoter-memory-budget int
//	      byte budget for decoded campaign policy tables; identical
//	      campaigns always share one interned table, and over budget the
//	      least-recently-quoted tables are dropped and re-decoded from the
//	      engine's cached artifacts on next use (default 0 = unlimited)
//	-lazy-bank
//	      solve only an adaptive campaign's starting factor at create;
//	      neighboring factors solve in the background the first time the
//	      rate estimate drifts to them (default false: pre-solve the whole
//	      bank on the engine's background lane)
//	-campaign-snapshot string
//	      campaign snapshot file: restored at boot if present, written on
//	      graceful shutdown ("" disables)
//	-wal-dir string
//	      campaign event-log directory: replayed at boot, appended while
//	      serving ("" disables durability)
//	-wal-sync-interval duration
//	      group-commit fsync window: a crash loses at most this much
//	      acknowledged campaign history (default 5ms)
//	-trace-requests int
//	      how many of the slowest recent request traces /debug/requests
//	      retains (default 64; 0 disables request tracing)
//	-trace-seed int
//	      seed for the trace-ID generator (default 1; IDs are the tracing
//	      plane's only randomness and are deterministic under a fixed seed)
//	-analytics-window int
//	      trailing-window length, in observed intervals, of the live λ̂
//	      re-fit (default 256)
//	-log-format string
//	      log output format, "text" or "json" (default "text")
//	-debug-addr string
//	      private listen address for net/http/pprof, e.g. "localhost:6060"
//	      ("" disables; never expose this address publicly)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"crowdpricing/internal/analytics"
	"crowdpricing/internal/campaign"
	"crowdpricing/internal/kinds"
	"crowdpricing/internal/server"
	"crowdpricing/internal/telemetry"
	"crowdpricing/internal/wal"
)

func main() {
	flag.Usage = func() {
		o := flag.CommandLine.Output()
		fmt.Fprintf(o, "usage: priced [flags]\n\n")
		fmt.Fprintf(o, "Run the crowd-pricing policy daemon (HTTP/JSON, cached solves, admission control).\n")
		fmt.Fprintf(o, "Problem kinds served: %s.\n\nflags:\n", strings.Join(kinds.Default().Kinds(), ", "))
		flag.PrintDefaults()
	}
	addr := flag.String("addr", ":8080", "listen address")
	cacheSize := flag.Int("cache", server.DefaultCacheSize, "maximum number of cached policies")
	workers := flag.Int("workers", 0, "goroutines inside each cold deadline solve; 0 means all CPUs")
	concurrency := flag.Int("concurrency", 0, "engine solve worker pool; 0 means all CPUs")
	queueDepth := flag.Int("queue", server.DefaultQueueDepth, "admission queue depth; overflow is shed with HTTP 429")
	timeout := flag.Duration("timeout", server.DefaultRequestTimeout, "per-request solve timeout")
	campaignTTL := flag.Duration("campaign-ttl", campaign.DefaultTTL, "expire campaigns idle for this long; negative never expires")
	quoterBudget := flag.Int64("quoter-memory-budget", 0, "byte budget for decoded campaign policy tables; 0 means unlimited")
	lazyBank := flag.Bool("lazy-bank", false, "solve adaptive bank factors on first use instead of at create")
	campaignSnap := flag.String("campaign-snapshot", "", `campaign snapshot file: restored at boot, written on graceful shutdown ("" disables)`)
	walDir := flag.String("wal-dir", "", `campaign event-log directory: replayed at boot, appended while serving ("" disables durability)`)
	walSync := flag.Duration("wal-sync-interval", wal.DefaultSyncInterval, "group-commit fsync window for the campaign event log")
	traceRequests := flag.Int("trace-requests", telemetry.DefaultKeep, "slowest recent request traces retained on /debug/requests; 0 disables tracing")
	traceSeed := flag.Int64("trace-seed", 1, "seed for the trace-ID generator")
	analyticsWindow := flag.Int("analytics-window", analytics.DefaultWindow, "trailing-window length (observed intervals) of the live λ̂ re-fit")
	logFormat := flag.String("log-format", "text", `log output format: "text" or "json"`)
	debugAddr := flag.String("debug-addr", "", `private listen address for net/http/pprof ("" disables)`)
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "priced: unknown -log-format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}
	if flag.NArg() > 0 {
		fatal("unexpected arguments; priced takes flags only", "args", flag.Args())
	}

	// The tracing plane distinguishes "default ring" from "off" by sign:
	// the wire flag reads naturally (0 = off), Options reads negative = off.
	traceBuffer := *traceRequests
	if traceBuffer <= 0 {
		traceBuffer = -1
	}
	srv := server.New(server.Options{
		CacheSize:          *cacheSize,
		SolverWorkers:      *workers,
		RequestTimeout:     *timeout,
		Workers:            *concurrency,
		QueueDepth:         *queueDepth,
		CampaignTTL:        *campaignTTL,
		QuoterMemoryBudget: *quoterBudget,
		LazyBank:           *lazyBank,
		TraceBuffer:        traceBuffer,
		TraceSeed:          *traceSeed,
		AnalyticsWindow:    *analyticsWindow,
		Logger:             logger,
	})
	defer srv.Close()

	// Campaign durability, in boot order: recover + replay the event log
	// first (a non-empty log is the authoritative state), fall back to the
	// legacy JSON snapshot only when the log is empty, and migrate such a
	// restore into the log by compacting it to a snapshot record.
	var wlog *wal.Log
	walReplayed := false
	if *walDir != "" {
		var err error
		wlog, err = srv.Campaigns().OpenWAL(*walDir, wal.Options{SyncInterval: *walSync})
		if err != nil {
			fatal("wal open failed", "dir", *walDir, "error", err)
		}
		defer func() {
			if err := wlog.Close(); err != nil {
				logger.Error("wal close failed", "error", err)
			}
		}()
		begin := time.Now()
		stats, err := srv.Campaigns().ReplayWAL(context.Background(), wlog)
		if err != nil {
			// Recovery already tolerated any torn tail; failing here means
			// real corruption or an unsolvable event. Refuse to serve an
			// empty table over live state.
			fatal("wal replay failed", "dir", *walDir, "error", err)
		}
		wlog.SetReplayDuration(time.Since(begin))
		if wm := wlog.Metrics(); wm.TruncatedBytes > 0 {
			logger.Warn("wal recovery truncated torn bytes left by a crash mid-write",
				"bytes", wm.TruncatedBytes)
		}
		walReplayed = stats.Records > 0
		logger.Info("wal replayed",
			"dir", *walDir, "records", stats.Records, "snapshots", stats.Snapshots,
			"campaigns", stats.Campaigns, "elapsed", time.Since(begin).Round(time.Millisecond))
	}
	if *campaignSnap != "" {
		restoreFailed := false
		if walReplayed {
			if _, err := os.Stat(*campaignSnap); err == nil {
				logger.Info("campaign snapshot ignored: the non-empty event log wins",
					"snapshot", *campaignSnap, "wal_dir", *walDir)
			}
		} else if f, err := os.Open(*campaignSnap); err == nil {
			restoreCtx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
			err = srv.Campaigns().Restore(restoreCtx, f)
			cancel()
			f.Close()
			if err != nil {
				restoreFailed = true
				logger.Error("campaign restore failed; continuing with an empty table",
					"snapshot", *campaignSnap, "error", err)
			} else {
				logger.Info("campaigns restored",
					"snapshot", *campaignSnap, "campaigns", srv.Campaigns().Metrics().Active)
			}
		} else if !errors.Is(err, os.ErrNotExist) {
			// The file exists but could not be read: treat it like a failed
			// restore so shutdown never replaces it with an empty table.
			restoreFailed = true
			logger.Error("campaign snapshot unreadable", "snapshot", *campaignSnap, "error", err)
		}
		defer func() {
			// Never clobber the last good snapshot with a worse one: if the
			// boot-time restore failed and nothing was created since, the
			// file on disk is still the best state we have.
			if restoreFailed && srv.Campaigns().Metrics().Active == 0 {
				logger.Warn("keeping campaign snapshot untouched (restore failed and the table is empty)",
					"snapshot", *campaignSnap)
				return
			}
			// Write-then-rename so a crash or full disk mid-write cannot
			// truncate the previous snapshot.
			tmp := *campaignSnap + ".tmp"
			f, err := os.Create(tmp)
			if err != nil {
				logger.Error("campaign snapshot write failed", "error", err)
				return
			}
			if err := srv.Campaigns().Snapshot(f); err != nil {
				f.Close()
				os.Remove(tmp)
				logger.Error("campaign snapshot write failed", "error", err)
				return
			}
			if err := f.Close(); err != nil {
				os.Remove(tmp)
				logger.Error("campaign snapshot write failed", "error", err)
				return
			}
			if err := os.Rename(tmp, *campaignSnap); err != nil {
				logger.Error("campaign snapshot rename failed", "error", err)
				return
			}
			logger.Info("campaign table written", "snapshot", *campaignSnap)
		}()
	}
	if wlog != nil {
		if !walReplayed {
			if active := srv.Campaigns().Metrics().Active; active > 0 {
				// Migration: fold the legacy-snapshot restore into the log as
				// a compaction snapshot, so the next boot replays it from the
				// log alone.
				if err := wlog.Compact(); err != nil {
					fatal("wal migration: seeding the log from the restored snapshot failed", "error", err)
				}
				logger.Info("wal migration: restored campaigns folded into the log",
					"campaigns", active, "dir", *walDir)
			}
		}
		srv.AttachWAL(wlog)
	}

	// The pprof surface is a second, private listener — profiling endpoints
	// leak heap contents and symbol names, so they never share the public
	// mux. The bind happens eagerly so a typo'd -debug-addr (or a taken
	// port) fails fast, before the daemon serves traffic; once serving, an
	// asynchronous error on this listener must not exit the process — that
	// would skip the deferred WAL close and shutdown snapshot — so the
	// serve goroutine logs and the daemon carries on without profiling.
	if *debugAddr != "" {
		debugMux := http.NewServeMux()
		debugMux.HandleFunc("/debug/pprof/", pprof.Index)
		debugMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		debugMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		debugMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		debugMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatal("pprof listen failed", "addr", *debugAddr, "error", err)
		}
		ds := &http.Server{Handler: debugMux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			logger.Info("pprof listening", "addr", *debugAddr)
			if err := ds.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof listener failed; profiling unavailable", "addr", *debugAddr, "error", err)
			}
		}()
		defer ds.Close()
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		logger.Info("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			logger.Error("shutdown failed", "error", err)
		}
	}()

	logger.Info("listening",
		"addr", *addr, "kinds", strings.Join(kinds.Default().Kinds(), "|"),
		"cache", *cacheSize, "queue", *queueDepth, "timeout", *timeout,
		"tracing", traceBuffer > 0)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal("listen failed", "addr", *addr, "error", err)
	}
	// ListenAndServe returns as soon as the listener closes; wait for
	// Shutdown to finish draining in-flight requests before exiting.
	stop()
	<-shutdownDone
}
