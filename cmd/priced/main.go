// Command priced runs the pricing daemon: a long-lived HTTP service that
// solves the paper's pricing problems on demand and serves repeated or
// concurrent identical problems from a shared policy cache. Cold requests
// run the full parallel solver; warm requests return in microseconds; N
// simultaneous identical requests cost exactly one solve.
//
// Start it, then POST problems as JSON:
//
//	priced -addr :8080 &
//	curl -s localhost:8080/v1/solve/budget -d '{
//	        "n": 100, "budget": 2500,
//	        "accept": {"s": 15, "b": -0.39, "m": 2000},
//	        "min_price": 1, "max_price": 50}'
//
// Endpoints: POST /v1/solve/deadline, /v1/solve/budget, /v1/solve/tradeoff,
// /v1/solve/batch; GET /healthz, /metrics (Prometheus text format).
//
// Flags:
//
//	-addr string
//	      listen address (default ":8080")
//	-cache int
//	      maximum number of cached policies (default 1024)
//	-workers int
//	      goroutines per cold deadline solve; 0 means all CPUs (default 0)
//	-timeout duration
//	      per-request solve timeout; timed-out solves keep running and warm
//	      the cache for the retry (default 2m0s)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"crowdpricing/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("priced: ")
	flag.Usage = func() {
		o := flag.CommandLine.Output()
		fmt.Fprintf(o, "usage: priced [flags]\n\n")
		fmt.Fprintf(o, "Run the crowd-pricing policy daemon (HTTP/JSON, cached solves).\n\nflags:\n")
		flag.PrintDefaults()
	}
	addr := flag.String("addr", ":8080", "listen address")
	cacheSize := flag.Int("cache", server.DefaultCacheSize, "maximum number of cached policies")
	workers := flag.Int("workers", 0, "goroutines per cold deadline solve; 0 means all CPUs")
	timeout := flag.Duration("timeout", server.DefaultRequestTimeout, "per-request solve timeout")
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments %q; priced takes flags only", flag.Args())
	}

	srv := server.New(server.Options{
		CacheSize:      *cacheSize,
		SolverWorkers:  *workers,
		RequestTimeout: *timeout,
	})
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		log.Print("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	log.Printf("listening on %s (cache %d policies, timeout %s)", *addr, *cacheSize, *timeout)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// ListenAndServe returns as soon as the listener closes; wait for
	// Shutdown to finish draining in-flight requests before exiting.
	stop()
	<-shutdownDone
}
