// Command priced runs the pricing daemon: a long-lived HTTP service that
// solves the paper's pricing problems on demand and serves repeated or
// concurrent identical problems from a shared policy cache. Every problem
// kind in the engine registry is served from one generic endpoint family —
// POST /v1/solve/{kind} for deadline, budget, tradeoff, and multi — with
// admission control: cold solves run on a bounded worker pool behind a
// bounded queue, and overload is shed with HTTP 429 instead of unbounded
// goroutines. Warm requests return in microseconds; N simultaneous
// identical requests cost exactly one solve.
//
// Start it, then POST problems as JSON:
//
//	priced -addr :8080 &
//	curl -s localhost:8080/v1/solve/budget -d '{
//	        "n": 100, "budget": 2500,
//	        "accept": {"s": 15, "b": -0.39, "m": 2000},
//	        "min_price": 1, "max_price": 50}'
//
// The daemon also runs stateful campaigns — the paper's online loop:
// POST /v1/campaigns registers a batch under a solved policy (optionally
// with §5.2.5 adaptive re-planning), POST /v1/campaigns/{id}/observe
// records each interval's arrivals and completions, and
// GET /v1/campaigns/{id}/price quotes the policy's current price in O(1).
// Idle campaigns expire after -campaign-ttl; with -campaign-snapshot the
// table is restored from the file at boot and written back on graceful
// shutdown, so restarts resume quoting identical prices.
//
// For crash durability — not just graceful restarts — run with -wal-dir:
// every campaign mutation is appended to a checksummed event log, group
// committed within -wal-sync-interval off the quote hot path, and replayed
// at boot (tolerating torn trailing writes from the crash itself). When
// both flags are set, a non-empty log wins and the snapshot file is
// ignored; a legacy snapshot with an empty log is migrated — restored,
// then compacted into the log — so `-campaign-snapshot` deployments can
// adopt `-wal-dir` with no manual step. Inspect a log with cmd/waldump.
//
// Endpoints: POST /v1/solve/{kind} (deadline | budget | tradeoff | multi),
// POST /v1/solve/batch; POST /v1/campaigns, POST
// /v1/campaigns/{id}/observe, GET /v1/campaigns/{id}[/price], DELETE
// /v1/campaigns/{id}; GET /healthz, /metrics (Prometheus text format,
// including queue-depth/in-flight/campaign gauges and per-kind solve and
// rejection counters).
//
// Flags:
//
//	-addr string
//	      listen address (default ":8080")
//	-cache int
//	      maximum number of cached policies (default 1024)
//	-workers int
//	      goroutines inside each cold deadline solve; 0 means all CPUs
//	      (default 0)
//	-concurrency int
//	      engine solve worker pool — how many cold solves run at once;
//	      0 means all CPUs (default 0)
//	-queue int
//	      admission queue depth; cold solves beyond it are shed with
//	      HTTP 429 (default 4096)
//	-timeout duration
//	      per-request solve timeout; timed-out solves keep running and warm
//	      the cache for the retry (default 2m0s)
//	-campaign-ttl duration
//	      expire campaigns idle for this long; negative never expires
//	      (default 30m0s)
//	-quoter-memory-budget int
//	      byte budget for decoded campaign policy tables; identical
//	      campaigns always share one interned table, and over budget the
//	      least-recently-quoted tables are dropped and re-decoded from the
//	      engine's cached artifacts on next use (default 0 = unlimited)
//	-lazy-bank
//	      solve only an adaptive campaign's starting factor at create;
//	      neighboring factors solve in the background the first time the
//	      rate estimate drifts to them (default false: pre-solve the whole
//	      bank on the engine's background lane)
//	-campaign-snapshot string
//	      campaign snapshot file: restored at boot if present, written on
//	      graceful shutdown ("" disables)
//	-wal-dir string
//	      campaign event-log directory: replayed at boot, appended while
//	      serving ("" disables durability)
//	-wal-sync-interval duration
//	      group-commit fsync window: a crash loses at most this much
//	      acknowledged campaign history (default 5ms)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"crowdpricing/internal/campaign"
	"crowdpricing/internal/kinds"
	"crowdpricing/internal/server"
	"crowdpricing/internal/wal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("priced: ")
	flag.Usage = func() {
		o := flag.CommandLine.Output()
		fmt.Fprintf(o, "usage: priced [flags]\n\n")
		fmt.Fprintf(o, "Run the crowd-pricing policy daemon (HTTP/JSON, cached solves, admission control).\n")
		fmt.Fprintf(o, "Problem kinds served: %s.\n\nflags:\n", strings.Join(kinds.Default().Kinds(), ", "))
		flag.PrintDefaults()
	}
	addr := flag.String("addr", ":8080", "listen address")
	cacheSize := flag.Int("cache", server.DefaultCacheSize, "maximum number of cached policies")
	workers := flag.Int("workers", 0, "goroutines inside each cold deadline solve; 0 means all CPUs")
	concurrency := flag.Int("concurrency", 0, "engine solve worker pool; 0 means all CPUs")
	queueDepth := flag.Int("queue", server.DefaultQueueDepth, "admission queue depth; overflow is shed with HTTP 429")
	timeout := flag.Duration("timeout", server.DefaultRequestTimeout, "per-request solve timeout")
	campaignTTL := flag.Duration("campaign-ttl", campaign.DefaultTTL, "expire campaigns idle for this long; negative never expires")
	quoterBudget := flag.Int64("quoter-memory-budget", 0, "byte budget for decoded campaign policy tables; 0 means unlimited")
	lazyBank := flag.Bool("lazy-bank", false, "solve adaptive bank factors on first use instead of at create")
	campaignSnap := flag.String("campaign-snapshot", "", `campaign snapshot file: restored at boot, written on graceful shutdown ("" disables)`)
	walDir := flag.String("wal-dir", "", `campaign event-log directory: replayed at boot, appended while serving ("" disables durability)`)
	walSync := flag.Duration("wal-sync-interval", wal.DefaultSyncInterval, "group-commit fsync window for the campaign event log")
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments %q; priced takes flags only", flag.Args())
	}

	srv := server.New(server.Options{
		CacheSize:          *cacheSize,
		SolverWorkers:      *workers,
		RequestTimeout:     *timeout,
		Workers:            *concurrency,
		QueueDepth:         *queueDepth,
		CampaignTTL:        *campaignTTL,
		QuoterMemoryBudget: *quoterBudget,
		LazyBank:           *lazyBank,
	})
	defer srv.Close()

	// Campaign durability, in boot order: recover + replay the event log
	// first (a non-empty log is the authoritative state), fall back to the
	// legacy JSON snapshot only when the log is empty, and migrate such a
	// restore into the log by compacting it to a snapshot record.
	var wlog *wal.Log
	walReplayed := false
	if *walDir != "" {
		var err error
		wlog, err = srv.Campaigns().OpenWAL(*walDir, wal.Options{SyncInterval: *walSync})
		if err != nil {
			log.Fatalf("wal: %v", err)
		}
		defer func() {
			if err := wlog.Close(); err != nil {
				log.Printf("wal close: %v", err)
			}
		}()
		begin := time.Now()
		stats, err := srv.Campaigns().ReplayWAL(context.Background(), wlog)
		if err != nil {
			// Recovery already tolerated any torn tail; failing here means
			// real corruption or an unsolvable event. Refuse to serve an
			// empty table over live state.
			log.Fatalf("wal replay from %s: %v", *walDir, err)
		}
		wlog.SetReplayDuration(time.Since(begin))
		if wm := wlog.Metrics(); wm.TruncatedBytes > 0 {
			log.Printf("wal: truncated %d torn byte(s) left by a crash mid-write", wm.TruncatedBytes)
		}
		walReplayed = stats.Records > 0
		log.Printf("wal: replayed %d record(s) (%d snapshot(s)) from %s: %d campaign(s) live in %s",
			stats.Records, stats.Snapshots, *walDir, stats.Campaigns, time.Since(begin).Round(time.Millisecond))
	}
	if *campaignSnap != "" {
		restoreFailed := false
		if walReplayed {
			if _, err := os.Stat(*campaignSnap); err == nil {
				log.Printf("campaign snapshot %s ignored: the event log at %s is non-empty and wins", *campaignSnap, *walDir)
			}
		} else if f, err := os.Open(*campaignSnap); err == nil {
			restoreCtx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
			err = srv.Campaigns().Restore(restoreCtx, f)
			cancel()
			f.Close()
			if err != nil {
				restoreFailed = true
				log.Printf("campaign restore from %s failed (continuing with an empty table): %v", *campaignSnap, err)
			} else {
				log.Printf("restored %d campaign(s) from %s", srv.Campaigns().Metrics().Active, *campaignSnap)
			}
		} else if !errors.Is(err, os.ErrNotExist) {
			// The file exists but could not be read: treat it like a failed
			// restore so shutdown never replaces it with an empty table.
			restoreFailed = true
			log.Printf("campaign snapshot %s unreadable: %v", *campaignSnap, err)
		}
		defer func() {
			// Never clobber the last good snapshot with a worse one: if the
			// boot-time restore failed and nothing was created since, the
			// file on disk is still the best state we have.
			if restoreFailed && srv.Campaigns().Metrics().Active == 0 {
				log.Printf("campaign snapshot: keeping %s untouched (restore failed and the table is empty)", *campaignSnap)
				return
			}
			// Write-then-rename so a crash or full disk mid-write cannot
			// truncate the previous snapshot.
			tmp := *campaignSnap + ".tmp"
			f, err := os.Create(tmp)
			if err != nil {
				log.Printf("campaign snapshot: %v", err)
				return
			}
			if err := srv.Campaigns().Snapshot(f); err != nil {
				f.Close()
				os.Remove(tmp)
				log.Printf("campaign snapshot: %v", err)
				return
			}
			if err := f.Close(); err != nil {
				os.Remove(tmp)
				log.Printf("campaign snapshot: %v", err)
				return
			}
			if err := os.Rename(tmp, *campaignSnap); err != nil {
				log.Printf("campaign snapshot: %v", err)
				return
			}
			log.Printf("campaign table written to %s", *campaignSnap)
		}()
	}
	if wlog != nil {
		if !walReplayed {
			if active := srv.Campaigns().Metrics().Active; active > 0 {
				// Migration: fold the legacy-snapshot restore into the log as
				// a compaction snapshot, so the next boot replays it from the
				// log alone.
				if err := wlog.Compact(); err != nil {
					log.Fatalf("wal: seeding the log from the restored snapshot: %v", err)
				}
				log.Printf("wal: migrated %d restored campaign(s) into %s", active, *walDir)
			}
		}
		srv.AttachWAL(wlog)
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		log.Print("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	log.Printf("listening on %s (kinds %s, cache %d policies, queue %d, timeout %s)",
		*addr, strings.Join(kinds.Default().Kinds(), "|"), *cacheSize, *queueDepth, *timeout)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// ListenAndServe returns as soon as the listener closes; wait for
	// Shutdown to finish draining in-flight requests before exiting.
	stop()
	<-shutdownDone
}
