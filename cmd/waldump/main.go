// Command waldump inspects a campaign event log written by priced's
// -wal-dir: it lists records (human or JSON lines), verifies frame
// integrity, and can replay the whole log into a standard campaign
// snapshot file — the migration path back from -wal-dir to
// -campaign-snapshot, and a way to examine post-crash state offline.
//
// The log directory is never modified: waldump scans read-only, stopping
// (and reporting) at a torn tail exactly where priced's recovery would
// truncate it.
//
// Examples:
//
//	waldump -dir /var/lib/priced/wal                 # human listing
//	waldump -dir /var/lib/priced/wal -json | jq .    # machine listing
//	waldump -dir /var/lib/priced/wal -verify         # integrity check (exit 1 on damage)
//	waldump -dir /var/lib/priced/wal -snapshot s.json  # replay → snapshot file
//
// Flags:
//
//	-dir string        log directory (required)
//	-json              list records as JSON lines instead of the human format
//	-verify            verify integrity only: print a summary, exit 1 if any
//	                   segment is corrupt or a torn tail was found
//	-snapshot string   replay the log through a real solve engine and write
//	                   the campaign table as a snapshot JSON file ("-" = stdout)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"crowdpricing/internal/campaign"
	"crowdpricing/internal/engine"
	"crowdpricing/internal/wal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("waldump: ")
	flag.Usage = func() {
		o := flag.CommandLine.Output()
		fmt.Fprintf(o, "usage: waldump -dir DIR [-json] [-verify] [-snapshot FILE]\n\n")
		fmt.Fprintf(o, "Inspect a campaign event log written by priced -wal-dir.\n\nflags:\n")
		flag.PrintDefaults()
	}
	dir := flag.String("dir", "", "log directory (required)")
	asJSON := flag.Bool("json", false, "list records as JSON lines")
	verify := flag.Bool("verify", false, "verify integrity only; exit 1 on corruption or a torn tail")
	snapOut := flag.String("snapshot", "", `replay the log and write a campaign snapshot JSON here ("-" = stdout)`)
	flag.Parse()
	if *dir == "" || flag.NArg() > 0 {
		flag.Usage()
		os.Exit(1)
	}

	switch {
	case *snapOut != "":
		replayToSnapshot(*dir, *snapOut)
	case *verify:
		verifyLog(*dir)
	default:
		listRecords(*dir, *asJSON)
	}
}

// jsonRecord is the -json line schema.
type jsonRecord struct {
	LSN     uint64          `json:"lsn"`
	Type    string          `json:"type"`
	Segment int64           `json:"segment"`
	Offset  int64           `json:"offset"`
	Bytes   int64           `json:"bytes"`
	Body    json.RawMessage `json:"body"`
}

func listRecords(dir string, asJSON bool) {
	enc := json.NewEncoder(os.Stdout)
	report, err := wal.Scan(wal.DirFS{}, dir, func(rec wal.Record, pos wal.FramePos) error {
		name := campaign.WALRecordName(rec.Type)
		if asJSON {
			return enc.Encode(jsonRecord{
				LSN:     rec.LSN,
				Type:    name,
				Segment: pos.Segment,
				Offset:  pos.Offset,
				Bytes:   pos.End - pos.Offset,
				Body:    json.RawMessage(rec.Data),
			})
		}
		body := rec.Data
		// Snapshot payloads are whole tables; keep the listing readable.
		const maxBody = 120
		suffix := ""
		if len(body) > maxBody {
			body, suffix = body[:maxBody], fmt.Sprintf("… (%d bytes)", len(rec.Data))
		}
		_, err := fmt.Printf("lsn=%-6d %-8s seg=%d off=%-8d %s%s\n",
			rec.LSN, name, pos.Segment, pos.Offset, body, suffix)
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	printSummary(report)
}

func verifyLog(dir string) {
	report, err := wal.Scan(wal.DirFS{}, dir, nil)
	if err != nil {
		log.Fatalf("CORRUPT: %v", err)
	}
	printSummary(report)
	if report.Torn != nil {
		log.Printf("TORN TAIL: recovery would truncate %s at offset %d (dropping %d byte(s)): %s",
			report.Torn.Name, report.Torn.Offset, report.Torn.Bytes, report.Torn.Reason)
		os.Exit(1)
	}
	fmt.Println("ok: every frame intact")
}

func printSummary(report *wal.ScanReport) {
	fmt.Fprintf(os.Stderr, "%d record(s) across %d segment(s), max lsn %d\n",
		report.Records, len(report.Segments), report.MaxLSN)
	if report.Torn != nil {
		fmt.Fprintf(os.Stderr, "torn tail in %s: %d byte(s) past offset %d not replayed\n",
			report.Torn.Name, report.Torn.Bytes, report.Torn.Offset)
	}
}

// replayToSnapshot folds the log into a live campaign table — re-solving
// every policy through a real engine, exactly as priced's boot replay
// does — and writes the table in the -campaign-snapshot JSON schema.
func replayToSnapshot(dir, out string) {
	eng := engine.New(engine.Options{})
	defer eng.Close()
	m := campaign.NewManager(eng, nil, campaign.Options{TTL: -1})
	defer m.Close()
	stats, err := m.ReplayWAL(context.Background(), wal.NewReader(nil, dir))
	if err != nil {
		log.Fatal(err)
	}
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := m.Snapshot(w); err != nil {
		log.Fatal(err)
	}
	log.Printf("replayed %d record(s): %d campaign(s) written", stats.Records, stats.Campaigns)
}
