// Command marketsim runs the Mechanical-Turk-style marketplace simulator:
// five fixed bundle-size trials followed by the MDP-planned dynamic trial,
// printing hourly completion curves, costs, accuracy, and retention.
//
// Flags:
//
//	-seed int
//	      random seed (default 1)
//	-tasks int
//	      total unit tasks (default 5000)
//	-hours float
//	      experiment horizon in hours (default 14)
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"crowdpricing/internal/market"
	"crowdpricing/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("marketsim: ")
	flag.Usage = func() {
		o := flag.CommandLine.Output()
		fmt.Fprintf(o, "usage: marketsim [flags]\n\n")
		fmt.Fprintf(o, "Run the Section 5.4 live-experiment protocol on the marketplace simulator.\n\nflags:\n")
		flag.PrintDefaults()
	}
	seed := flag.Int64("seed", 1, "random seed")
	tasks := flag.Int("tasks", 5000, "total unit tasks")
	horizon := flag.Float64("hours", 14, "experiment horizon in hours")
	flag.Parse()

	cfg := market.PaperLiveConfig(market.PaperArrival())
	cfg.TotalTasks = *tasks
	cfg.Horizon = *horizon

	fixed := map[int]*market.Result{}
	fmt.Println("fixed bundle-size trials:")
	fmt.Println("bundle  HITs  tasks  cost(c)  done(h)  HITs/worker  accuracy")
	for i, g := range market.PaperGroupSizes {
		res, err := market.RunFixed(cfg, g, *seed+int64(i))
		if err != nil {
			log.Fatal(err)
		}
		fixed[g] = res
		done := "unfinished"
		if !math.IsInf(res.CompletionTime, 1) {
			done = fmt.Sprintf("%.1f", res.CompletionTime)
		}
		fmt.Printf("%-7d %-5d %-6d %-8d %-8s %-12.2f %.3f\n",
			g, len(res.HITs), res.TasksCompleted, res.CostCents, done,
			res.HITsPerWorker(), stats.Mean(res.Accuracies()))
	}

	rates, err := market.EstimateGroupRates(cfg, fixed)
	if err != nil {
		log.Fatal(err)
	}
	choose, err := market.PlanGroupSizes(cfg, rates, 10, 500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndynamic trial (hourly bundle choices):")
	logged := func(remaining, hour int) int {
		g := choose(remaining, hour)
		fmt.Printf("  hour %2d: %5d tasks left -> bundle %d\n", hour, remaining, g)
		return g
	}
	dyn, err := market.RunDynamic(cfg, logged, *seed+100)
	if err != nil {
		log.Fatal(err)
	}
	done := "unfinished"
	if !math.IsInf(dyn.CompletionTime, 1) {
		done = fmt.Sprintf("%.1fh", dyn.CompletionTime)
	}
	fmt.Printf("dynamic: %d tasks, cost %dc, done %s, accuracy %.3f\n",
		dyn.TasksCompleted, dyn.CostCents, done, stats.Mean(dyn.Accuracies()))
	if f20 := fixed[20]; f20 != nil && f20.CostCents > 0 {
		fmt.Printf("saving vs fixed bundle-20: %.0f%%\n",
			(1-float64(dyn.CostCents)/float64(f20.CostCents))*100)
	}
}
