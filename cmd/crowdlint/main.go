// Command crowdlint runs the repository's custom static-analysis suite:
// four analyzers that enforce invariants the generic toolchain cannot see.
//
//	determinism  no wall-clock reads, global rand draws, or unsorted map
//	             iteration in the deterministic packages (core, dist, nhpp,
//	             rate, sim, kinds, bench, exp) or on fingerprint/snapshot
//	             paths elsewhere
//	locksafe     no blocking operations (Solve, net/http, channel ops,
//	             WaitGroup.Wait) while a campaign/engine mutex is held;
//	             every Lock pairs with an Unlock on all return paths
//	metriclint   Prometheus naming at metric definition sites: snake_case
//	             crowdpricing_* names, counters ending in _total, closed
//	             label set
//	directive    every //crowdlint:allow directive is well-formed, names a
//	             real analyzer, and carries a reason after --
//
// Findings are waived in place with an escape hatch that the directive
// analyzer itself audits:
//
//	//crowdlint:allow determinism -- request-latency metric wants wall time
//
// Usage:
//
//	crowdlint [flags] [packages]
//
// With package patterns (default ./...) crowdlint loads and checks them
// standalone. It also speaks the `go vet -vettool` protocol, which is how
// CI runs it so results are build-cached per package:
//
//	go vet -vettool=$(which crowdlint) ./...
//
// Exit status: 0 clean, 1 operational error, 2 findings.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"strings"

	"crowdpricing/internal/analysis"
	"crowdpricing/internal/analysis/load"
	"crowdpricing/internal/analysis/suite"
	"crowdpricing/internal/analysis/unitchecker"
)

func main() {
	args := os.Args[1:]
	// The `go vet -vettool` handshake probes the tool before any package
	// work: -V=full must print a build ID for the vet cache key, -flags the
	// tool's analyzer flags (crowdlint exposes none).
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			printVersion()
			return
		case args[0] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(unitchecker.Run(args[0], suite.Analyzers))
		}
	}

	fs := flag.NewFlagSet("crowdlint", flag.ExitOnError)
	listOnly := fs.Bool("list", false, "list the analyzers in the suite and exit")
	tests := fs.Bool("tests", true, "also load and check _test.go files")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "crowdlint: repository-specific static analysis (determinism, locksafe, metriclint, directive)\n\n")
		fmt.Fprintf(fs.Output(), "usage: crowdlint [flags] [packages]\n")
		fmt.Fprintf(fs.Output(), "       go vet -vettool=$(which crowdlint) [packages]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(1)
	}

	if *listOnly {
		for _, a := range suite.Analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Load(".", load.Options{Tests: *tests}, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crowdlint:", err)
		os.Exit(1)
	}
	found := false
	for _, pkg := range pkgs {
		diags, err := analysis.RunPackage(pkg.Fset, pkg.Syntax, pkg.Types, pkg.Info, suite.Analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crowdlint:", err)
			os.Exit(1)
		}
		for _, d := range diags {
			found = true
			fmt.Println(d)
		}
	}
	if found {
		os.Exit(2)
	}
}

// printVersion emits the `-V=full` line cmd/go hashes into the vet cache
// key. The content ID is the hash of the executable itself, so rebuilding
// crowdlint (new analyzers, changed rules) invalidates cached vet results.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			id = fmt.Sprintf("%x", sha256.Sum256(data))[:24]
		}
	}
	fmt.Printf("crowdlint version devel buildID=%s/%s\n", id, id)
}
