// Command walstats replays a campaign event log through the analytics
// plane — the log→figure pipeline: point it at a daemon's -wal-dir and it
// folds every recorded create/observe/finish into the same aggregator
// that serves /v1/analytics live, printing the fleet λ̂ re-fit, the
// per-interval arrival profile (the piecewise NHPP rate fit), and the
// per-cohort summaries as JSON. The fold is read-only (the daemon may
// still be running) and deterministic: the same log prints byte-identical
// output on every run, so recorded production traffic regenerates paper
// figures reproducibly — a property the CI obs-smoke job asserts by
// diffing two runs.
//
//	walstats -dir /var/lib/priced/wal
//	walstats -dir wal -figures profile.tsv   # λ̂_t profile as TSV for plotting
//
// Flags:
//
//	-dir string
//	      campaign event-log directory to replay (required)
//	-window int
//	      trailing-window length (observed intervals) of the λ̂ re-fit,
//	      matching the daemon's -analytics-window (default 256)
//	-figures string
//	      also write the per-interval arrival profile as TSV — interval
//	      index, fitted rate, mean arrivals, observe count — ready for
//	      gnuplot/pgfplots ("" disables)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"crowdpricing/internal/analytics"
	"crowdpricing/internal/campaign"
	"crowdpricing/internal/wal"
)

func main() {
	flag.Usage = func() {
		o := flag.CommandLine.Output()
		fmt.Fprintf(o, "usage: walstats -dir <wal-dir> [-window n] [-figures out.tsv]\n\n")
		fmt.Fprintf(o, "Replay a campaign event log through the analytics plane and print the λ̂/cohort fold as JSON.\n\nflags:\n")
		flag.PrintDefaults()
	}
	dir := flag.String("dir", "", "campaign event-log directory to replay (required)")
	window := flag.Int("window", analytics.DefaultWindow, "trailing-window length (observed intervals) of the λ̂ re-fit")
	figures := flag.String("figures", "", `write the per-interval arrival profile as TSV ("" disables)`)
	flag.Parse()
	if *dir == "" || flag.NArg() > 0 {
		flag.Usage()
		os.Exit(2)
	}

	agg := analytics.New(*window)
	if err := campaign.FoldWAL(wal.NewReader(nil, *dir), agg); err != nil {
		fmt.Fprintf(os.Stderr, "walstats: %v\n", err)
		os.Exit(1)
	}
	snap := agg.Snapshot()

	// encoding/json marshals map keys sorted, so the output is
	// byte-identical across runs over the same log by construction.
	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "walstats: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s\n", out)

	if *figures != "" {
		if err := writeFigures(*figures, snap); err != nil {
			fmt.Fprintf(os.Stderr, "walstats: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeFigures renders the λ̂_t profile — the piecewise arrival-rate fit
// over interval index — as a TSV plotting tools consume directly.
func writeFigures(path string, snap *analytics.Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	fmt.Fprintln(f, "# interval\tlambda_hat\tmean_arrivals\tobserves")
	r := snap.Rate()
	for i, mean := range snap.IntervalMeans {
		fitted := 0.0
		if r != nil {
			fitted = r.Rate(float64(i) + 0.5)
		}
		fmt.Fprintf(f, "%d\t%g\t%g\t%d\n", i, fitted, mean, snap.IntervalObserves[i])
	}
	return f.Close()
}
