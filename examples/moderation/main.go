// Content moderation with a hard deadline: a trust-and-safety team needs
// 300 flagged images reviewed before a 6-hour policy deadline, during
// daytime marketplace traffic. The example shows (a) planning on a realistic
// non-homogeneous arrival profile, (b) how the dynamic schedule reacts when
// the market turns out slower than planned, and (c) what the same mistake
// costs the fixed-price baseline — the Figure 9 robustness story on a
// production-shaped workload.
//
//	go run ./examples/moderation
package main

import (
	"fmt"
	"log"

	"crowdpricing/internal/choice"
	"crowdpricing/internal/core"
	"crowdpricing/internal/dist"
	"crowdpricing/internal/rate"
	"crowdpricing/internal/sim"
)

func main() {
	log.SetFlags(0)

	// Daytime profile: traffic ramps 9am → noon, then fades.
	arrival := rate.NewLinear(
		[]float64{0, 1.5, 3, 4.5, 6},
		[]float64{4800, 6200, 6600, 5900, 5200},
	)
	believed := choice.Paper13

	problem := &core.DeadlineProblem{
		N:         300,
		Horizon:   6,
		Intervals: 18, // 20-minute repricing
		Lambdas:   rate.IntervalMeans(arrival, 6, 18),
		Accept:    believed,
		MinPrice:  0,
		MaxPrice:  80,
		TruncEps:  1e-9,
	}
	cal, err := problem.CalibratePenaltyForConfidence(0.999, 1e6, 18)
	if err != nil {
		log.Fatal(err)
	}
	fixed, err := problem.FixedPriceForConfidence(0.999)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %.1f cents/task dynamic vs %d cents/task fixed (%.0f%% saving)\n",
		cal.Outcome.AvgReward, fixed.Price,
		(fixed.ExpectedCost-cal.Outcome.ExpectedCost)/fixed.ExpectedCost*100)

	// The market is actually 40% more competitive than believed.
	truth := choice.Logistic{S: believed.S, B: believed.B, M: believed.M * 1.4}
	world := sim.World{Lambdas: problem.Lambdas, Accept: truth}
	r := dist.NewRNG(42)
	dyn, err := sim.RunDeadlinePolicy(cal.Policy, world, 500, r)
	if err != nil {
		log.Fatal(err)
	}
	fix, err := sim.RunFixedPrice(problem, fixed.Price, world, 500, r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwhen the market is 40% tougher than estimated:")
	fmt.Printf("  dynamic: %.2f tasks missed on average, %.1f%% of runs fully done, avg %.2f c/task\n",
		dyn.MeanRemaining, dyn.CompletionRate*100, dyn.MeanAvgReward)
	fmt.Printf("  fixed:   %.2f tasks missed on average, %.1f%% of runs fully done\n",
		fix.MeanRemaining, fix.CompletionRate*100)
	fmt.Println("the dynamic schedule buys its guarantee back by repricing; the fixed price cannot.")
}
