// Deadline/budget trade-off (Section 6): a requester with neither a hard
// deadline nor a hard budget prices a labeling backlog to minimize
// E[cost] + α·E[latency]. The example sweeps the impatience weight α and
// shows the resulting price ladder, cross-checking the two formulations the
// paper gives (fixed-rate steps vs per-worker-arrival transitions).
//
//	go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"

	"crowdpricing/internal/choice"
	"crowdpricing/internal/core"
)

func main() {
	log.SetFlags(0)

	fmt.Println("objective: minimize E[cost] + alpha * E[latency]")
	fmt.Println("N=500 labeling tasks, ~5200 workers/hour, Equation-13 acceptance")
	fmt.Println()
	fmt.Println("alpha(c/h)  price(c)  E[cost](c)  E[latency](h)  objective")
	for _, alpha := range []float64{1, 5, 20, 80, 320, 1280} {
		p := &core.TradeoffProblem{
			N:        500,
			Alpha:    alpha,
			Lambda:   5200,
			Accept:   choice.Paper13,
			MinPrice: 1,
			MaxPrice: 60,
		}
		pol, err := p.SolveWorkerArrival()
		if err != nil {
			log.Fatal(err)
		}
		price := pol.Price[p.N]
		// Decompose the optimal objective back into money and time.
		accept := p.Accept.Accept(price)
		eArrivals := float64(p.N) / accept
		eLatency := eArrivals / p.Lambda
		eCost := float64(p.N * price)
		fmt.Printf("%-11.0f %-9d %-11.0f %-14.1f %-10.0f\n",
			alpha, price, eCost, eLatency, pol.Value[p.N])

		// The fixed-rate formulation agrees to within its discretization.
		fr, err := p.SolveFixedRate()
		if err != nil {
			log.Fatal(err)
		}
		if d := fr.Value[p.N] - pol.Value[p.N]; d > 0.05*pol.Value[p.N] || d < -0.05*pol.Value[p.N] {
			log.Fatalf("formulations disagree at alpha=%v: %v vs %v", alpha, fr.Value[p.N], pol.Value[p.N])
		}
	}
	fmt.Println()
	fmt.Println("more impatience (higher alpha) buys throughput with higher prices;")
	fmt.Println("the two Section 6 formulations agree on every row.")
}
