// Live-market repricing loop: the Section 5.4 protocol end to end on the
// marketplace simulator. Five fixed bundle-size trials estimate how the
// market responds, an MDP plans an hourly bundle schedule from those
// estimates, and the dynamic run completes the same 5,000-task batch at a
// fraction of the comparable fixed cost.
//
//	go run ./examples/livemarket
package main

import (
	"fmt"
	"log"
	"math"

	"crowdpricing/internal/market"
	"crowdpricing/internal/stats"
)

func main() {
	log.SetFlags(0)

	cfg := market.PaperLiveConfig(market.PaperArrival())

	// Phase 1 (Section 5.4.1): probe the market with fixed bundle sizes.
	fixed := map[int]*market.Result{}
	fmt.Println("phase 1: fixed trials (bundle size = the price lever at $0.02/HIT)")
	for i, g := range market.PaperGroupSizes {
		res, err := market.RunFixed(cfg, g, int64(1000+i))
		if err != nil {
			log.Fatal(err)
		}
		fixed[g] = res
		status := "unfinished at deadline"
		if !math.IsInf(res.CompletionTime, 1) {
			status = fmt.Sprintf("done in %.1fh", res.CompletionTime)
		}
		fmt.Printf("  bundle %2d: %4d HITs, %4d/%d tasks, $%.2f, %s, %.2f HITs/worker, accuracy %.1f%%\n",
			g, len(res.HITs), res.TasksCompleted, cfg.TotalTasks,
			float64(res.CostCents)/100, status, res.HITsPerWorker(),
			stats.Mean(res.Accuracies())*100)
	}

	// Phase 2 (Section 5.4.2): estimate rates, plan, and run dynamically.
	rates, err := market.EstimateGroupRates(cfg, fixed)
	if err != nil {
		log.Fatal(err)
	}
	choose, err := market.PlanGroupSizes(cfg, rates, 10, 500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nphase 2: dynamic schedule")
	logged := func(remaining, hour int) int {
		g := choose(remaining, hour)
		fmt.Printf("  hour %2d: %4d tasks left -> bundle %d\n", hour, remaining, g)
		return g
	}
	dyn, err := market.RunDynamic(cfg, logged, 2024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndynamic result: %d/%d tasks, $%.2f", dyn.TasksCompleted, cfg.TotalTasks, float64(dyn.CostCents)/100)
	if !math.IsInf(dyn.CompletionTime, 1) {
		fmt.Printf(", done in %.1fh", dyn.CompletionTime)
	}
	fmt.Println()
	f20 := fixed[20]
	fmt.Printf("comparable fixed run (bundle 20): $%.2f -> dynamic saves %.0f%%\n",
		float64(f20.CostCents)/100, (1-float64(dyn.CostCents)/float64(f20.CostCents))*100)
	fmt.Printf("accuracy stays price-insensitive: dynamic %.1f%% vs fixed-20 %.1f%%\n",
		stats.Mean(dyn.Accuracies())*100, stats.Mean(f20.Accuracies())*100)
}
