// Quickstart: price a batch of 200 tasks against a 24-hour deadline.
//
// This is the minimal end-to-end flow: describe the marketplace (arrival
// rate + acceptance curve), solve the deadline MDP, calibrate it to a 99.9%
// completion guarantee, and read off the price schedule.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"crowdpricing/internal/choice"
	"crowdpricing/internal/core"
	"crowdpricing/internal/rate"
)

func main() {
	log.SetFlags(0)

	// 1. The marketplace: ~5200 workers arrive per hour, and a worker takes
	//    a task priced at c cents with probability p(c) following the
	//    paper's calibrated Equation 13.
	arrival := rate.Constant(5200)
	accept := choice.Paper13

	// 2. The job: 200 tasks, 24 hours, repricing every 20 minutes.
	problem := &core.DeadlineProblem{
		N:         200,
		Horizon:   24,
		Intervals: 72,
		Lambdas:   rate.IntervalMeans(arrival, 24, 72),
		Accept:    accept,
		MinPrice:  0,
		MaxPrice:  50,
		TruncEps:  1e-9,
	}

	// 3. Calibrate the terminal penalty so every task finishes with 99.9%
	//    probability, then inspect the plan.
	cal, err := problem.CalibratePenaltyForConfidence(0.999, 1e6, 18)
	if err != nil {
		log.Fatal(err)
	}
	out := cal.Outcome
	fmt.Printf("expected total cost:    %.1f cents (%.2f cents/task)\n", out.ExpectedCost, out.AvgReward)
	fmt.Printf("completion probability: %.4f\n", out.CompletionProb)

	// 4. Compare with the best fixed price for the same guarantee.
	fixed, err := problem.FixedPriceForConfidence(0.999)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fixed-price baseline:   %d cents/task (%.0f%% more expensive)\n",
		fixed.Price, (fixed.ExpectedCost-out.ExpectedCost)/out.ExpectedCost*100)

	// 5. The policy is a price table: ask it what to post right now.
	fmt.Println("\nif the batch is on track:")
	for _, t := range []int{0, 24, 48, 71} {
		expectedLeft := 200 - 200*t/72 // rough on-track backlog
		fmt.Printf("  interval %2d (%2dh in), %3d tasks left -> post %d cents\n",
			t, t/3, expectedLeft, cal.Policy.PriceAt(expectedLeft, t))
	}
	fmt.Println("if the batch is badly behind:")
	for _, t := range []int{48, 60, 71} {
		fmt.Printf("  interval %2d (%2dh in), 150 tasks left -> post %d cents\n",
			t, t/3, cal.Policy.PriceAt(150, t))
	}
}
