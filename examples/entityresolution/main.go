// Entity resolution on a fixed budget: a data team has 250 candidate
// duplicate pairs to verify and exactly $30 to spend. The example solves the
// Section 4 problem — the optimal static two-price allocation on the convex
// hull of (c, 1/p(c)) — cross-checks it against the exact pseudo-polynomial
// DP, and simulates the completion-time distribution the team should expect
// (the Figure 11 analysis).
//
//	go run ./examples/entityresolution
package main

import (
	"fmt"
	"log"

	"crowdpricing/internal/choice"
	"crowdpricing/internal/core"
	"crowdpricing/internal/dist"
	"crowdpricing/internal/rate"
	"crowdpricing/internal/sim"
	"crowdpricing/internal/stats"
)

func main() {
	log.SetFlags(0)

	problem := &core.BudgetProblem{
		N:        250,
		Budget:   3000, // cents
		Accept:   choice.Paper13,
		MinPrice: 1,
		MaxPrice: 50,
	}

	// The near-optimal two-price strategy (Algorithm 3).
	hull, err := problem.SolveHull()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("hull strategy (at most two prices, Theorem 7):")
	for price, count := range hull.Counts {
		fmt.Printf("  %4d tasks at %d cents\n", count, price)
	}
	fmt.Printf("committed spend: %d of %d cents\n", hull.TotalCost(), problem.Budget)

	// Cross-check against the exact integer optimum (Theorem 6): the gap is
	// bounded by one task's 1/p difference (Theorem 8).
	exact, err := problem.SolveExactDP()
	if err != nil {
		log.Fatal(err)
	}
	hw := hull.ExpectedWorkerArrivals(problem.Accept)
	ew := exact.ExpectedWorkerArrivals(problem.Accept)
	fmt.Printf("\nexpected worker arrivals: hull %.0f vs exact DP %.0f (gap %.2f)\n", hw, ew, hw-ew)

	// What completion time does that buy? Simulate against a steady
	// marketplace (Section 5.3).
	lambdaBar := 5200.0
	fmt.Printf("analytic E[T] = E[W]/lambda = %.1f hours\n", hull.ExpectedLatency(problem.Accept, lambdaBar))
	times := sim.BudgetCompletion(hull, problem.Accept, rate.Constant(lambdaBar), 200, 300, dist.NewRNG(7))
	finite := sim.SortedFinite(times)
	if len(finite) == 0 {
		log.Fatal("no trial finished")
	}
	fmt.Printf("simulated completion time over %d runs:\n", len(finite))
	fmt.Printf("  mean %.1fh   p5 %.1fh   median %.1fh   p95 %.1fh\n",
		stats.Mean(finite),
		stats.Quantile(finite, 0.05),
		stats.Quantile(finite, 0.5),
		stats.Quantile(finite, 0.95))
	fmt.Println("note the spread: a fixed budget bounds spend, not latency (Section 5.3).")
}
